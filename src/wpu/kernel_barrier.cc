#include "wpu/kernel_barrier.hh"

#include <cstdio>

#include "sim/logging.hh"
#include "wpu/wpu.hh"

namespace dws {

void
KernelBarrier::arrive(int count, Pc barPc, Cycle now)
{
    if (pendingBarPc == kPcUnknown)
        pendingBarPc = barPc;
    else if (pendingBarPc != barPc)
        panic("threads at different kernel barriers (%d vs %d)",
              pendingBarPc, barPc);
    arrived += count;
    if (arrived > alive) {
        for (Wpu *w : wpus)
            std::fputs(w->dumpState().c_str(), stderr);
        panic("kernel barrier overflow: %d arrived, %d alive", arrived,
              alive);
    }
    check(now);
}

void
KernelBarrier::onHalt(int count, Cycle now)
{
    alive -= count;
    if (alive < 0)
        panic("kernel barrier underflow: %d alive", alive);
    check(now);
}

void
KernelBarrier::check(Cycle now)
{
    if (arrived == 0 || arrived != alive)
        return;
    arrived = 0;
    pendingBarPc = kPcUnknown;
    for (Wpu *w : wpus)
        w->releaseKernelBarrier(now);
}

} // namespace dws
