// ReconvBarrier and Frame are plain data; see frame.hh. This file exists
// so the module has a translation unit for future out-of-line helpers.
#include "wpu/frame.hh"
