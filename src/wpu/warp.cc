// Warp is plain data; see warp.hh.
#include "wpu/warp.hh"
