#include "wpu/mask.hh"

namespace dws {

std::string
maskToString(ThreadMask m, int width)
{
    std::string s;
    s.reserve(static_cast<size_t>(width));
    for (int i = 0; i < width; i++)
        s.push_back((m >> i) & 1 ? '1' : '0');
    return s;
}

} // namespace dws
