/**
 * @file
 * Active-mask helpers. A ThreadMask has one bit per lane of a warp
 * (SIMD width up to 64).
 */

#ifndef DWS_WPU_MASK_HH
#define DWS_WPU_MASK_HH

#include <cstdint>
#include <string>

namespace dws {

/** One bit per lane within a warp. */
using ThreadMask = std::uint64_t;

/** @return a mask with the low `width` bits set. */
constexpr ThreadMask
fullMask(int width)
{
    return width >= 64 ? ~ThreadMask(0)
                       : ((ThreadMask(1) << width) - 1);
}

/** @return a mask with only `lane` set. */
constexpr ThreadMask
laneBit(int lane)
{
    return ThreadMask(1) << lane;
}

/** @return number of set lanes. */
inline int
popcount(ThreadMask m)
{
    return __builtin_popcountll(m);
}

/** @return index of the lowest set lane (mask must be non-zero). */
inline int
lowestLane(ThreadMask m)
{
    return __builtin_ctzll(m);
}

/** @return "0101..." string, lane 0 first, for debugging. */
std::string maskToString(ThreadMask m, int width);

/**
 * Iterate over set lanes: for (int lane : Lanes(mask)).
 */
class Lanes
{
  public:
    explicit Lanes(ThreadMask m) : mask(m) {}

    class Iter
    {
      public:
        explicit Iter(ThreadMask m) : rest(m) {}
        int operator*() const { return lowestLane(rest); }
        Iter &
        operator++()
        {
            rest &= rest - 1;
            return *this;
        }
        bool operator!=(const Iter &o) const { return rest != o.rest; }

      private:
        ThreadMask rest;
    };

    Iter begin() const { return Iter(mask); }
    Iter end() const { return Iter(0); }

  private:
    ThreadMask mask;
};

} // namespace dws

#endif // DWS_WPU_MASK_HH
