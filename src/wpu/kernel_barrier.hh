/**
 * @file
 * Kernel-wide barrier (the IR's Bar instruction).
 *
 * All live threads of all WPUs must arrive before any may proceed.
 * Explicit synchronization primitives are also full re-convergence
 * points: every warp collapses back to a single SIMD group when the
 * barrier releases (paper Section 5.4).
 */

#ifndef DWS_WPU_KERNEL_BARRIER_HH
#define DWS_WPU_KERNEL_BARRIER_HH

#include <vector>

#include "sim/types.hh"

namespace dws {

class Wpu;

/** Global (kernel-wide) thread barrier. */
class KernelBarrier
{
  public:
    /** Register a participating WPU (called by the System at build). */
    void addWpu(Wpu *wpu) { wpus.push_back(wpu); }

    /** Set the number of live threads (called at kernel launch). */
    void setAliveThreads(int n) { alive = n; }

    /**
     * A SIMD group arrived with `count` threads at the barrier at
     * instruction `barPc`.
     */
    void arrive(int count, Pc barPc, Cycle now);

    /** `count` threads halted (they will never arrive). */
    void onHalt(int count, Cycle now);

    /** @return threads currently waiting. */
    int waiting() const { return arrived; }

  private:
    void check(Cycle now);

    std::vector<Wpu *> wpus;
    int alive = 0;
    int arrived = 0;
    Pc pendingBarPc = kPcUnknown;
};

} // namespace dws

#endif // DWS_WPU_KERNEL_BARRIER_HH
