#include "wpu/wst.hh"

#include "sim/logging.hh"

namespace dws {

int
WarpSplitTable::inUse() const
{
    int used = 0;
    for (size_t w = 0; w < groupsPerWarp.size(); w++) {
        const int eff = groupsPerWarp[w] + parkedPerWarp[w];
        if (eff > 1)
            used += eff;
    }
    return used;
}

bool
WarpSplitTable::canSubdivide(WarpId w) const
{
    const int eff = groupsPerWarp[static_cast<size_t>(w)] +
                    parkedPerWarp[static_cast<size_t>(w)];
    const int extra = (eff <= 1) ? 2 : 1;
    return inUse() + extra <= capacity;
}

void
WarpSplitTable::notePeak()
{
    const int used = inUse();
    if (static_cast<std::uint64_t>(used) > peakUse)
        peakUse = static_cast<std::uint64_t>(used);
}

void
WarpSplitTable::addGroup(WarpId w)
{
    groupsPerWarp[static_cast<size_t>(w)]++;
    notePeak();
    DWS_TRACE(trace_, wst(TraceKind::WstAlloc, wpuId_, w,
                          static_cast<std::uint32_t>(inUse())));
}

void
WarpSplitTable::removeGroup(WarpId w)
{
    int &g = groupsPerWarp[static_cast<size_t>(w)];
    if (g <= 0)
        panic("WST removeGroup on warp %d with %d groups", w, g);
    g--;
    DWS_TRACE(trace_, wst(TraceKind::WstFree, wpuId_, w,
                          static_cast<std::uint32_t>(inUse())));
}

void
WarpSplitTable::addParked(WarpId w)
{
    parkedPerWarp[static_cast<size_t>(w)]++;
    notePeak();
    DWS_TRACE(trace_, wst(TraceKind::WstPark, wpuId_, w,
                          static_cast<std::uint32_t>(inUse())));
}

void
WarpSplitTable::removeParked(WarpId w, int n)
{
    int &p = parkedPerWarp[static_cast<size_t>(w)];
    if (p < n)
        panic("WST removeParked(%d) on warp %d with %d parked", n, w, p);
    p -= n;
    DWS_TRACE(trace_, wst(TraceKind::WstUnpark, wpuId_, w,
                          static_cast<std::uint32_t>(inUse())));
}

void
WarpSplitTable::clearParked(WarpId w)
{
    parkedPerWarp[static_cast<size_t>(w)] = 0;
    DWS_TRACE(trace_, wst(TraceKind::WstUnpark, wpuId_, w,
                          static_cast<std::uint32_t>(inUse())));
}

} // namespace dws
