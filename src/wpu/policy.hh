/**
 * @file
 * Divergence-policy decision logic (paper Sections 4.3, 5.2, 5.3).
 *
 * Wraps a PolicyConfig and answers, at each divergence event, whether
 * the WPU should subdivide. The mechanics of subdivision live in Wpu.
 */

#ifndef DWS_WPU_POLICY_HH
#define DWS_WPU_POLICY_HH

#include "isa/instr.hh"
#include "sim/config.hh"

namespace dws {

/** Pure decision functions over the configured policy. */
class DivergencePolicy
{
  public:
    explicit DivergencePolicy(const PolicyConfig &cfg) : cfg(cfg) {}

    /** @return true if DWS (any form of subdivision) is enabled. */
    bool
    dwsEnabled() const
    {
        return !cfg.slip && (cfg.splitOnBranch ||
                             cfg.splitScheme != SplitScheme::None);
    }

    /**
     * Should a divergent branch subdivide this group?
     *
     * A lone (undivided) warp subdivides only on branches selected by
     * the static heuristic (Section 4.3). A group that is already a
     * warp-split cannot fall back on the warp's re-convergence stack,
     * so under BranchBypass it subdivides on any divergent branch
     * (Section 5.3.2: splits "keep being subdivided upon future
     * divergent branches").
     *
     * @param loneWarp true if the group is its warp's only group
     * @param in       the branch instruction
     */
    bool
    wantBranchSplit(bool loneWarp, const Instr &in, int groupWidth) const
    {
        if (cfg.slip || groupWidth < cfg.minSplitWidth)
            return false;
        if (loneWarp)
            return cfg.splitOnBranch && in.subdividable();
        // Existing warp-splits:
        if (cfg.splitOnBranch)
            return true;
        return cfg.splitScheme != SplitScheme::None &&
               cfg.memReconv == MemReconv::BranchBypass;
    }

    /**
     * Should a divergent memory access subdivide the issuing group?
     *
     * Groups below the minimum split width are never subdivided:
     * "aggressive subdivision ... may lead to a large number of narrow
     * warp-splits that only exploit a fraction of the SIMD computation
     * resources" (Section 1). The floor bounds recursion depth the way
     * the paper's over-subdivision guards intend.
     *
     * @param anyOtherReady another SIMD group on the WPU could issue
     * @param groupWidth    active lanes of the group considering a split
     */
    bool
    wantMemSplit(bool anyOtherReady, int groupWidth) const
    {
        if (cfg.slip || groupWidth < cfg.minSplitWidth)
            return false;
        switch (cfg.splitScheme) {
          case SplitScheme::None:       return false;
          case SplitScheme::Aggressive: return true;
          case SplitScheme::Lazy:
          case SplitScheme::Revive:     return !anyOtherReady;
        }
        return false;
    }

    /** @return true if stalls should attempt a revive split. */
    bool
    reviveOnStall() const
    {
        return !cfg.slip && cfg.splitScheme == SplitScheme::Revive;
    }

    /** @return true if memory splits are BranchLimited. */
    bool
    branchLimited() const
    {
        return cfg.memReconv == MemReconv::BranchLimited;
    }

    /** @return true if PC-based re-convergence is enabled. */
    bool pcReconv() const { return cfg.pcReconv; }

    /** @return true for the adaptive-slip baseline. */
    bool slip() const { return cfg.slip; }

    /** @return true if slipped warps may pass branches. */
    bool slipBranchBypass() const { return cfg.slipBranchBypass; }

    /** @return the underlying configuration. */
    const PolicyConfig &config() const { return cfg; }

  private:
    PolicyConfig cfg;
};

} // namespace dws

#endif // DWS_WPU_POLICY_HH
