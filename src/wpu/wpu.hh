/**
 * @file
 * The Warp Processing Unit: an in-order SIMD core with multi-threading,
 * a per-warp re-convergence stack, and dynamic warp subdivision
 * (the paper's primary contribution, Sections 3-5).
 *
 * Execution model (Section 3.3):
 *  - one instruction issued per cycle, executed by all active lanes of
 *    the selected SIMD group;
 *  - all instructions have unit latency except memory references, which
 *    are modeled through the cache hierarchy;
 *  - the WPU switches SIMD groups whenever the current group accesses
 *    the cache; switching costs nothing;
 *  - divergence is handled per the configured DivergencePolicy:
 *    conventional re-convergence stack, DWS (warp-split table), or
 *    adaptive slip.
 */

#ifndef DWS_WPU_WPU_HH
#define DWS_WPU_WPU_HH

#include <memory>
#include <vector>

#include "isa/program.hh"
#include "mem/memory.hh"
#include "mem/memsys.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "wpu/kernel_barrier.hh"
#include "wpu/policy.hh"
#include "wpu/scheduler.hh"
#include "wpu/simd_group.hh"
#include "wpu/slip.hh"
#include "wpu/warp.hh"
#include "wpu/wst.hh"

namespace dws {

/** One warp processing unit. */
class Wpu
{
  public:
    /**
     * @param id      index of this WPU in the system
     * @param cfg     full system configuration
     * @param prog    kernel program (shared by all threads)
     * @param mem     functional memory
     * @param memsys  timing memory hierarchy
     * @param events  shared event queue
     * @param kbar    kernel-wide barrier
     */
    Wpu(WpuId id, const SystemConfig &cfg, const Program &prog,
        Memory &mem, MemSystem &memsys, EventQueue &events,
        KernelBarrier *kbar);

    /**
     * Initialize thread contexts and root groups.
     *
     * @param tidBase      global thread id of this WPU's (warp 0,lane 0)
     * @param totalThreads value of r1 in every thread
     */
    void launch(ThreadId tidBase, int totalThreads);

    /**
     * Advance one cycle.
     * @return true if an instruction was issued.
     */
    bool tick(Cycle now);

    /** @return true once every local thread has halted. */
    bool finished() const { return haltedThreads == numThreads; }

    /** @return true if some group could issue now or next cycle. */
    bool hasImminentWork() const;

    /** Credit `n` fast-forwarded stall cycles (classified like now). */
    void addStallCycles(std::uint64_t n);

    /** Collapse every warp to one group after a kernel barrier. */
    void releaseKernelBarrier(Cycle now);

    /** Per-WPU statistics. */
    WpuStats stats;

    // --- introspection (tests, debugging) --------------------------
    /** @return register r of (warp, lane). */
    std::int64_t regAt(WarpId w, int lane, int r) const;
    /** @return live SIMD groups (ascending id). */
    const std::vector<SimdGroup *> &groups() const { return live; }
    /** @return per-warp bookkeeping. */
    const Warp &warp(WarpId w) const
    {
        return warps[static_cast<size_t>(w)];
    }
    /** @return the warp-split table accounting. */
    const WarpSplitTable &wst() const { return wstTable; }
    /** @return one-line state dump for deadlock diagnostics. */
    std::string dumpState() const;
    /** @return the WPU's id. */
    WpuId id() const { return wpuId; }

  private:
    // --- group lifecycle ---------------------------------------------
    SimdGroup *createGroup(WarpId w, Pc pc, ThreadMask mask,
                           std::vector<Frame> frames, BarrierRef barrier,
                           GroupState state, bool branchLimited);
    void destroyGroup(SimdGroup *g);
    SimdGroup *findGroup(GroupId id);

    // --- control flow ---------------------------------------------------
    /**
     * Settle re-convergence state: pop frames whose rpc has been
     * reached, arrive at barriers, stop BranchLimited groups at branch
     * boundaries. @return false if the group was consumed.
     */
    bool advanceControl(SimdGroup *g);
    void arriveAtBarrier(const BarrierRef &b, ThreadMask mask, Pc meetPc);
    void checkBarrier(const BarrierRef &b);
    void completeBarrier(const BarrierRef &b);
    /** Build a group from saved frames (skipping dead ones). */
    void resumeFromFrames(WarpId w, std::vector<Frame> frames,
                          const BarrierRef &outer);
    void registerBarrier(const BarrierRef &b);
    void recheckWarpBarriers(WarpId w);

    // --- issue path --------------------------------------------------
    SimdGroup *pickExecutable(Cycle now);
    void issue(SimdGroup *g, Cycle now);
    void execAlu(SimdGroup *g, const Instr &in);
    void execBranch(SimdGroup *g, const Instr &in, Cycle now);
    void execMem(SimdGroup *g, const Instr &in, Cycle now);
    void execBar(SimdGroup *g, Cycle now);
    void execHalt(SimdGroup *g, Cycle now);

    // --- divergence mechanics ---------------------------------------
    void conventionalBranch(SimdGroup *g, const Instr &in,
                            ThreadMask taken, ThreadMask notTaken);
    /**
     * @return the re-convergence barrier for a new subdivision of g:
     *         the warp's existing one when g is already a split
     *         (flat, paper Section 4.4), or a fresh barrier derived
     *         from g's top frame.
     */
    BarrierRef splitBarrier(SimdGroup *g, bool branchLimited);
    void branchSplit(SimdGroup *g, const Instr &in, ThreadMask taken,
                     ThreadMask notTaken);
    /**
     * Split a group at its current pc into a ready part and a
     * memory-waiting part (used at issue and by ReviveSplit).
     */
    void memSplit(SimdGroup *g, ThreadMask readyMask, Cycle readyAt,
                  Cycle now);
    void tryReviveSplit(Cycle now);
    void tryPcMerge(SimdGroup *g, Cycle now);
    bool anyOtherReady(const SimdGroup *g) const;

    // --- memory ------------------------------------------------------
    void issueLines(SimdGroup *g, Cycle now);
    void finalizeAccess(SimdGroup *g, Cycle now);
    void wake(GroupId id, ThreadMask lanes, Cycle now);
    void wakeRetry(GroupId id, Cycle now);
    void becomeReady(SimdGroup *g, Cycle now);

    // --- slip ----------------------------------------------------------
    void slipMergeCheck(SimdGroup *g, Cycle now);
    bool slipHandleBoundary(SimdGroup *g, Cycle now);
    void slipReleaseOrphans(WarpId w, Cycle now);
    /** Resume the next suspended thread set toward a slip boundary. */
    void spawnNextCatchup(const BarrierRef &b, Cycle now);

    // --- misc -----------------------------------------------------------
    void haltLanes(SimdGroup *g, Cycle now);
    std::int64_t &reg(WarpId w, int lane, int r);
    ThreadId tidOf(WarpId w, int lane) const;
    void classifyStall();
    /** Run the invariant checker; dump state and panic on violations. */
    void runInvariantAudit(Cycle now);

    /** Read-only structural access for the runtime invariant audit. */
    friend class InvariantChecker;

    WpuId wpuId;
    SystemConfig cfg;
    DivergencePolicy policy;
    const Program &prog;
    Memory &mem;
    MemSystem &memsys;
    EventQueue &events;
    KernelBarrier *kbar;

    int numThreads = 0;
    int haltedThreads = 0;
    ThreadId tidBase = 0;

    std::vector<std::int64_t> regs;
    std::vector<Warp> warps;
    std::vector<std::vector<BarrierRef>> warpBarriers;
    std::vector<Pc> warpBarPc; ///< Bar pc each warp is parked at

    std::vector<std::unique_ptr<SimdGroup>> groupStore;
    std::vector<SimdGroup *> live; ///< ascending id
    GroupId nextGroupId = 0;

    WarpSplitTable wstTable;
    Scheduler sched;
    SlipController slipCtl;

    /** Invariant-audit cadence in cycles (0 = off); see runInvariantAudit. */
    Cycle auditCadence = 0;

    /** Cycle of the most recent tick (for policy checks). */
    Cycle lastTickCycle = 0;

    /** Consecutive no-issue cycles (ReviveSplit trigger damping). */
    int stallStreak = 0;

    /** Interval accounting for slip adaptation. */
    Cycle lastSlipAdapt = 0;
    std::uint64_t lastActive = 0;
    std::uint64_t lastMemStall = 0;
};

} // namespace dws

#endif // DWS_WPU_WPU_HH
