/**
 * @file
 * The Warp Processing Unit: an in-order SIMD core with multi-threading,
 * a per-warp re-convergence stack, and dynamic warp subdivision
 * (the paper's primary contribution, Sections 3-5).
 *
 * Execution model (Section 3.3):
 *  - one instruction issued per cycle, executed by all active lanes of
 *    the selected SIMD group;
 *  - all instructions have unit latency except memory references, which
 *    are modeled through the cache hierarchy;
 *  - the WPU switches SIMD groups whenever the current group accesses
 *    the cache; switching costs nothing;
 *  - divergence is handled per the configured DivergencePolicy:
 *    conventional re-convergence stack, DWS (warp-split table), or
 *    adaptive slip.
 */

#ifndef DWS_WPU_WPU_HH
#define DWS_WPU_WPU_HH

#include <array>
#include <memory>
#include <vector>

#include "isa/program.hh"
#include "mem/memory.hh"
#include "mem/memsys.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "trace/trace.hh"
#include "wpu/arena.hh"
#include "wpu/kernel_barrier.hh"
#include "wpu/policy.hh"
#include "wpu/scheduler.hh"
#include "wpu/simd_group.hh"
#include "wpu/slip.hh"
#include "wpu/warp.hh"
#include "wpu/wst.hh"

namespace dws {

class ExecutionOracle;

/** One warp processing unit. */
class Wpu : public EventTarget
{
  public:
    /**
     * @param id      index of this WPU in the system
     * @param cfg     full system configuration
     * @param prog    kernel program (shared by all threads)
     * @param mem     functional memory
     * @param memsys  timing memory hierarchy
     * @param events  shared event queue
     * @param kbar    kernel-wide barrier
     */
    Wpu(WpuId id, const SystemConfig &cfg, const Program &prog,
        Memory &mem, MemSystem &memsys, EventQueue &events,
        KernelBarrier *kbar);

    /**
     * Initialize thread contexts and root groups.
     *
     * @param tidBase      global thread id of this WPU's (warp 0,lane 0)
     * @param totalThreads value of r1 in every thread
     */
    void launch(ThreadId tidBase, int totalThreads);

    /**
     * Advance one cycle.
     * @return true if an instruction was issued.
     */
    bool tick(Cycle now);

    /** Handle a WakeGroup/WakeRetry memory-completion event. */
    void onSimEvent(const SimEvent &ev) override;

    /**
     * @return true if tick(now) could do anything beyond recording a
     * stall. Quiescent WPUs (every group waiting on memory or a
     * barrier) are skipped by System::run() and their stall cycles
     * credited lazily by accountStallsBefore(). Policies with per-cycle
     * duties (slip adaptation, revive probing, invariant audits) always
     * tick.
     */
    bool
    needsTick(Cycle now) const
    {
        if (finished())
            return false;
        if (alwaysTick_)
            return true;
        return sched.anyIssuableAt(now);
    }

    /**
     * Credit every unaccounted cycle before `c` as a stall (or idle)
     * cycle. Between two of a WPU's own ticks/events its group states
     * cannot change, so the whole backlog shares one classification —
     * the per-cycle classifyStall() result, summed.
     */
    void accountStallsBefore(Cycle c);

    /** @return true while inside this WPU's own tick(). */
    bool midTick() const { return inTick_; }

    /** @return true once every local thread has halted. */
    bool finished() const { return haltedThreads == numThreads; }

    /** @return true if some group could issue now or next cycle. */
    bool hasImminentWork() const;

    /** Credit `n` fast-forwarded stall cycles (classified like now). */
    void addStallCycles(std::uint64_t n);

    /**
     * Collapse every warp to one group after a kernel barrier.
     * @param releaser WPU whose tick triggered the release (-1 if
     *        unknown); decides whether this WPU's current cycle is
     *        still ahead of it in the tick order (see the accounting
     *        note in the implementation).
     */
    void releaseKernelBarrier(Cycle now, WpuId releaser = -1);

    /** Per-WPU statistics. */
    WpuStats stats;

    // --- introspection (tests, debugging) --------------------------
    /** @return register r of (warp, lane). */
    std::int64_t regAt(WarpId w, int lane, int r) const;
    /** @return live SIMD groups (ascending id). */
    const std::vector<SimdGroup *> &groups() const { return live; }
    /** @return per-warp bookkeeping. */
    const Warp &warp(WarpId w) const
    {
        return warps[static_cast<size_t>(w)];
    }
    /** @return the warp-split table accounting. */
    const WarpSplitTable &wst() const { return wstTable; }
    /** @return one-line state dump for deadlock diagnostics. */
    std::string dumpState() const;
    /**
     * @return a single-line summary of this WPU (halted count, group
     *         census by state, WST/slot occupancy) — the per-WPU line
     *         of the deadlock/abort report where the full dumpState()
     *         would drown the signal.
     */
    std::string stateLine() const;
    /** @return the WPU's id. */
    WpuId id() const { return wpuId; }

    /**
     * Attach the tracer (nullptr = tracing off) and forward it to the
     * scheduler and WST. Call before launch(); purely observational.
     */
    void setTracer(Tracer *t);

    /**
     * Attach the static-analysis cross-validation oracle (nullptr =
     * off). Call before launch(); purely observational — hooks never
     * change simulation results.
     */
    void setOracle(ExecutionOracle *o) { oracle_ = o; }

    /** @return a metrics-timeline sample of this WPU's current state. */
    TraceEpochSample traceSample() const;

  private:
    // --- group lifecycle ---------------------------------------------
    SimdGroup *createGroup(WarpId w, Pc pc, ThreadMask mask,
                           std::vector<Frame> frames, BarrierRef barrier,
                           GroupState state, bool branchLimited);
    /** Single-frame fast path: no vector materialized by the caller. */
    SimdGroup *createGroup(WarpId w, Pc pc, ThreadMask mask,
                           const Frame &frame, BarrierRef barrier,
                           GroupState state, bool branchLimited);
    SimdGroup *initGroup(SimdGroup *g, WarpId w, Pc pc, ThreadMask mask,
                         BarrierRef barrier, GroupState state,
                         bool branchLimited);
    void destroyGroup(SimdGroup *g);
    SimdGroup *findGroup(GroupId id);

    /**
     * The single mutation point for a live group's state: keeps the
     * per-state census and the scheduler's ready list in sync.
     */
    void setGroupState(SimdGroup *g, GroupState s);

    /** @return true if any live group waits on memory (stall class). */
    bool
    memWaiting() const
    {
        return stateCount[static_cast<size_t>(GroupState::WaitMem)] +
                       stateCount[static_cast<size_t>(
                               GroupState::WaitRetry)] >
               0;
    }

    /** @return a pooled re-convergence barrier (fresh, default state). */
    BarrierRef makeBarrier();

    /** Schedule a memory-completion wake for group `id` at `at`. */
    void scheduleWake(GroupId id, ThreadMask lanes, Cycle at);
    /** Schedule a retry wake for group `id` at `at`. */
    void scheduleWakeRetry(GroupId id, Cycle at);

    // --- control flow ---------------------------------------------------
    /**
     * Settle re-convergence state: pop frames whose rpc has been
     * reached, arrive at barriers, stop BranchLimited groups at branch
     * boundaries. @return false if the group was consumed.
     */
    bool advanceControl(SimdGroup *g);
    void arriveAtBarrier(const BarrierRef &b, ThreadMask mask, Pc meetPc);
    void checkBarrier(const BarrierRef &b);
    void completeBarrier(const BarrierRef &b);
    /** Build a group from saved frames (skipping dead ones). */
    void resumeFromFrames(WarpId w, std::vector<Frame> frames,
                          const BarrierRef &outer);
    void registerBarrier(const BarrierRef &b);
    void recheckWarpBarriers(WarpId w);

    // --- issue path --------------------------------------------------
    /** tick() body; the wrapper maintains accounting bookkeeping. */
    bool tickImpl(Cycle now);
    SimdGroup *pickExecutable(Cycle now);
    void issue(SimdGroup *g, Cycle now);
    void execAlu(SimdGroup *g, const Instr &in);
    void execBranch(SimdGroup *g, const Instr &in, Cycle now);
    void execMem(SimdGroup *g, const Instr &in, Cycle now);
    void execBar(SimdGroup *g, Cycle now);
    void execHalt(SimdGroup *g, Cycle now);

    // --- divergence mechanics ---------------------------------------
    void conventionalBranch(SimdGroup *g, const Instr &in,
                            ThreadMask taken, ThreadMask notTaken);
    /**
     * @return the re-convergence barrier for a new subdivision of g:
     *         the warp's existing one when g is already a split
     *         (flat, paper Section 4.4), or a fresh barrier derived
     *         from g's top frame.
     */
    BarrierRef splitBarrier(SimdGroup *g, bool branchLimited);
    void branchSplit(SimdGroup *g, const Instr &in, ThreadMask taken,
                     ThreadMask notTaken);
    /**
     * Split a group at its current pc into a ready part and a
     * memory-waiting part (used at issue and by ReviveSplit).
     */
    void memSplit(SimdGroup *g, ThreadMask readyMask, Cycle readyAt,
                  Cycle now);
    void tryReviveSplit(Cycle now);
    void tryPcMerge(SimdGroup *g, Cycle now);
    bool anyOtherReady(const SimdGroup *g) const;

    // --- memory ------------------------------------------------------
    void issueLines(SimdGroup *g, Cycle now);
    void finalizeAccess(SimdGroup *g, Cycle now);
    void wake(GroupId id, ThreadMask lanes, Cycle now);
    void wakeRetry(GroupId id, Cycle now);
    void becomeReady(SimdGroup *g, Cycle now);

    // --- slip ----------------------------------------------------------
    void slipMergeCheck(SimdGroup *g, Cycle now);
    bool slipHandleBoundary(SimdGroup *g, Cycle now);
    void slipReleaseOrphans(WarpId w, Cycle now);
    /** Resume the next suspended thread set toward a slip boundary. */
    void spawnNextCatchup(const BarrierRef &b, Cycle now);

    // --- misc -----------------------------------------------------------
    void haltLanes(SimdGroup *g, Cycle now);
    std::int64_t &reg(WarpId w, int lane, int r);
    ThreadId tidOf(WarpId w, int lane) const;
    void classifyStall();
    /** Run the invariant checker; dump state and panic on violations. */
    void runInvariantAudit(Cycle now);

    /** Read-only structural access for the runtime invariant audit. */
    friend class InvariantChecker;
    /** Mutating access for deterministic fault injection (src/fault/). */
    friend class FaultInjector;

    /** Structured tracer; nullptr (the default) means tracing is off. */
    Tracer *trace_ = nullptr;
    ExecutionOracle *oracle_ = nullptr;

    WpuId wpuId;
    SystemConfig cfg;
    DivergencePolicy policy;
    const Program &prog;
    Memory &mem;
    MemSystem &memsys;
    EventQueue &events;
    KernelBarrier *kbar;

    int numThreads = 0;
    int haltedThreads = 0;
    ThreadId tidBase = 0;

    std::vector<std::int64_t> regs;
    std::vector<Warp> warps;
    std::vector<std::vector<BarrierRef>> warpBarriers;
    std::vector<Pc> warpBarPc; ///< Bar pc each warp is parked at

    /** Pooled storage for every SimdGroup this WPU creates. */
    GroupArena groupArena;
    std::vector<SimdGroup *> live; ///< ascending id
    GroupId nextGroupId = 0;

    /** Live groups per GroupState (indexed by the enum value). */
    std::array<int, 6> stateCount{};

    /** Freelist shared by every pooled ReconvBarrier control block. */
    std::shared_ptr<PoolState> barrierPool = std::make_shared<PoolState>();

    WarpSplitTable wstTable;
    Scheduler sched;
    SlipController slipCtl;

    /** Invariant-audit cadence in cycles (0 = off); see runInvariantAudit. */
    Cycle auditCadence = 0;

    /** Next cycle at which the audit-cadence check may fire. */
    Cycle auditNext = 0;

    /** First cycle not yet credited to a stats cycle counter. */
    Cycle nextUnaccounted = 0;

    /** True while inside this WPU's own tick() (barrier accounting). */
    bool inTick_ = false;

    /** Policy has per-cycle duties; never skip this WPU's ticks. */
    bool alwaysTick_ = false;

    /** Reused per-issue scratch buffers (issueLines). */
    std::vector<int> scratchBankUse;
    std::vector<Addr> scratchLines;
    std::vector<ThreadMask> scratchMasks;

    /** Cycle of the most recent tick (for policy checks). */
    Cycle lastTickCycle = 0;

    /** Consecutive no-issue cycles (ReviveSplit trigger damping). */
    int stallStreak = 0;

    /**
     * The next memSplit() was triggered by tryReviveSplit(): label its
     * trace record SplitRevive instead of SplitMem. Trace-only.
     */
    bool traceReviveSplit_ = false;

    /** Interval accounting for slip adaptation. */
    Cycle lastSlipAdapt = 0;
    std::uint64_t lastActive = 0;
    std::uint64_t lastMemStall = 0;
};

} // namespace dws

#endif // DWS_WPU_WPU_HH
