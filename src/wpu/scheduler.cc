#include "wpu/scheduler.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dws {

void
Scheduler::requestSlot(SimdGroup *g)
{
    if (g->hasSlot)
        return;
    if (used < capacity) {
        g->hasSlot = true;
        used++;
        updateReady(g);
        DWS_TRACE(trace_, slot(true, wpuId_, g->warp, g->id,
                               static_cast<std::uint32_t>(used)));
        return;
    }
    // Already queued?
    for (const SimdGroup *q : waitQueue)
        if (q == g)
            return;
    waitQueue.push_back(g);
}

void
Scheduler::drainQueue()
{
    while (used < capacity && !waitQueue.empty()) {
        SimdGroup *g = waitQueue.front();
        waitQueue.pop_front();
        if (g->state == GroupState::Dead || g->hasSlot)
            continue;
        g->hasSlot = true;
        used++;
        updateReady(g);
        DWS_TRACE(trace_, slot(true, wpuId_, g->warp, g->id,
                               static_cast<std::uint32_t>(used)));
    }
    if (used > capacity)
        panic("scheduler grants %d slots with capacity %d", used,
              capacity);
}

void
Scheduler::releaseSlot(SimdGroup *g)
{
    if (!g->hasSlot)
        return;
    if (used <= 0)
        panic("scheduler slot release for group %d underflows the "
              "slot count", g->id);
    g->hasSlot = false;
    used--;
    updateReady(g);
    DWS_TRACE(trace_, slot(false, wpuId_, g->warp, g->id,
                           static_cast<std::uint32_t>(used)));
    drainQueue();
}

void
Scheduler::updateReady(SimdGroup *g)
{
    const bool want = g->hasSlot && (g->state == GroupState::Ready ||
                                     g->state == GroupState::WaitRetry);
    if (want == g->inReadyList)
        return;
    if (want) {
        // Keep the list ascending by id so round-robin order matches a
        // scan over all live groups (which are created in id order).
        const auto at = std::lower_bound(
                ready.begin(), ready.end(), g,
                [](const SimdGroup *a, const SimdGroup *b) {
                    return a->id < b->id;
                });
        ready.insert(at, g);
        g->inReadyList = true;
    } else {
        const auto at = std::find(ready.begin(), ready.end(), g);
        if (at == ready.end())
            panic("group %d flagged inReadyList but absent from the "
                  "ready list", g->id);
        ready.erase(at);
        g->inReadyList = false;
    }
}

void
Scheduler::dequeue(GroupId id)
{
    for (size_t i = 0; i < waitQueue.size(); i++) {
        if (waitQueue[i]->id == id) {
            waitQueue.erase(waitQueue.begin() +
                            static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
}

SimdGroup *
Scheduler::pick(Cycle now)
{
    drainQueue();
    if (ready.empty())
        return nullptr;

    // Round-robin over the ready list by ascending id, starting after
    // the last picked id. Groups outside the list are never issuable,
    // so this selects the same group a scan over all live groups would.
    size_t start = 0;
    for (size_t i = 0; i < ready.size(); i++) {
        if (ready[i]->id > lastPicked) {
            start = i;
            break;
        }
        if (i + 1 == ready.size())
            start = 0; // wrapped
    }
    for (size_t k = 0; k < ready.size(); k++) {
        SimdGroup *g = ready[(start + k) % ready.size()];
        if (g->issuable(now)) {
            lastPicked = g->id;
            return g;
        }
    }
    return nullptr;
}

} // namespace dws
