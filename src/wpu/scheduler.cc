#include "wpu/scheduler.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dws {

void
Scheduler::requestSlot(SimdGroup *g)
{
    if (g->hasSlot)
        return;
    if (used < capacity) {
        g->hasSlot = true;
        used++;
        return;
    }
    // Already queued?
    for (const SimdGroup *q : waitQueue)
        if (q == g)
            return;
    waitQueue.push_back(g);
}

void
Scheduler::drainQueue()
{
    while (used < capacity && !waitQueue.empty()) {
        SimdGroup *g = waitQueue.front();
        waitQueue.pop_front();
        if (g->state == GroupState::Dead || g->hasSlot)
            continue;
        g->hasSlot = true;
        used++;
    }
    if (used > capacity)
        panic("scheduler grants %d slots with capacity %d", used,
              capacity);
}

void
Scheduler::releaseSlot(SimdGroup *g)
{
    if (!g->hasSlot)
        return;
    if (used <= 0)
        panic("scheduler slot release for group %d underflows the "
              "slot count", g->id);
    g->hasSlot = false;
    used--;
    drainQueue();
}

void
Scheduler::dequeue(GroupId id)
{
    for (size_t i = 0; i < waitQueue.size(); i++) {
        if (waitQueue[i]->id == id) {
            waitQueue.erase(waitQueue.begin() +
                            static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
}

SimdGroup *
Scheduler::pick(const std::vector<SimdGroup *> &groups, int numWarps,
                Cycle now)
{
    (void)numWarps;
    drainQueue();
    if (groups.empty())
        return nullptr;

    // Round-robin over groups by ascending id, starting after the last
    // picked id. New splits get fresh (larger) ids, so siblings take
    // turns naturally.
    size_t start = 0;
    for (size_t i = 0; i < groups.size(); i++) {
        if (groups[i]->id > lastPicked) {
            start = i;
            break;
        }
        if (i + 1 == groups.size())
            start = 0; // wrapped
    }
    for (size_t k = 0; k < groups.size(); k++) {
        SimdGroup *g = groups[(start + k) % groups.size()];
        if (g->issuable(now)) {
            lastPicked = g->id;
            return g;
        }
    }
    return nullptr;
}

} // namespace dws
