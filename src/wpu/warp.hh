/**
 * @file
 * Per-warp bookkeeping shared by all of the warp's SIMD groups.
 */

#ifndef DWS_WPU_WARP_HH
#define DWS_WPU_WARP_HH

#include <vector>

#include "sim/types.hh"
#include "wpu/frame.hh"
#include "wpu/mask.hh"

namespace dws {

/** One suspended thread set of the adaptive-slip mechanism. */
struct SlipEntry
{
    /** Lanes suspended while waiting for memory. */
    ThreadMask mask = 0;
    /** pc of the memory instruction they must resume at. */
    Pc pc = 0;
    /** Completion time of their outstanding requests. */
    Cycle readyAt = 0;
};

/** State common to all groups of one warp. */
struct Warp
{
    WarpId id = -1;

    /** Lanes whose threads have executed Halt. */
    ThreadMask halted = 0;

    /** Lanes that exist at all (== fullMask(simdWidth)). */
    ThreadMask all = 0;

    /** Number of live SIMD groups belonging to this warp. */
    int liveGroups = 0;

    /** Adaptive slip: suspended thread sets (paper Section 5.7). */
    std::vector<SlipEntry> slipEntries;

    /** @return lanes still running threads. */
    ThreadMask alive() const { return all & ~halted; }

    /** @return total lanes currently suspended by slip. */
    ThreadMask
    slippedMask() const
    {
        ThreadMask m = 0;
        for (const auto &e : slipEntries)
            m |= e.mask;
        return m;
    }
};

} // namespace dws

#endif // DWS_WPU_WARP_HH
