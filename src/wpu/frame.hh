/**
 * @file
 * Re-convergence frames and barriers.
 *
 * A Frame is one entry of a SIMT re-convergence stack (Fung et al.
 * MICRO'07, paper Section 4.1): the path's next pc, the pc at which the
 * path re-converges (the enclosing branch's immediate post-dominator),
 * and the set of lanes on the path.
 *
 * A ReconvBarrier is the DWS replacement for the serialization the stack
 * would have imposed: when a warp is subdivided, the siblings no longer
 * execute in stack order, but they must still eventually re-unite at the
 * post-dominator associated with the top of the stack at split time
 * (paper Section 4.4, "stack-based re-convergence"). The barrier
 * remembers the frames *below* the split point so the merged group can
 * resume exactly where a conventional stack pop would have resumed.
 */

#ifndef DWS_WPU_FRAME_HH
#define DWS_WPU_FRAME_HH

#include <memory>
#include <vector>

#include "sim/types.hh"
#include "wpu/mask.hh"

namespace dws {

/** One SIMT re-convergence stack entry. */
struct Frame
{
    Pc pc = 0;          ///< next pc of this path
    Pc rpc = kPcExit;   ///< re-convergence pc (immediate post-dominator)
    ThreadMask mask = 0;
};

struct ReconvBarrier;
using BarrierRef = std::shared_ptr<ReconvBarrier>;

/** Re-convergence point shared by the warp-splits of one subdivision. */
struct ReconvBarrier
{
    /**
     * The pc at which siblings re-unite. For subdivisions this is the
     * rpc of the frame that was split (known statically); for
     * BranchLimited memory splits it is kPcUnknown until the first
     * sibling reaches a boundary (next branch or post-dominator).
     */
    Pc pc = kPcExit;

    /** rpc of the split frame; becomes the merged group's frame rpc. */
    Pc origRpc = kPcExit;

    /** Lanes that must arrive (the split frame's full mask). */
    ThreadMask expected = 0;

    /** Lanes that have arrived so far. */
    ThreadMask arrived = 0;

    /** Frames below the split point, restored on completion. */
    std::vector<Frame> contFrames;

    /** The barrier enclosing the split group (its own barrier). */
    BarrierRef outer;

    /** Warp this barrier belongs to (sanity checking). */
    WarpId warp = -1;

    /** True for the synthetic outermost (program exit) barrier. */
    bool isExit = false;

    /** Set once the barrier has completed (guards double completion). */
    bool done = false;

    /** Splits parked here (their WST entries stay occupied). */
    int parkedSplits = 0;
};

} // namespace dws

#endif // DWS_WPU_FRAME_HH
