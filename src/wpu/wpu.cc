#include "wpu/wpu.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "analysis/invariants.hh"
#include "analysis/oracle.hh"
#include "sim/abort.hh"
#include "sim/logging.hh"

namespace dws {

// The tracer records GroupState values as raw integers and the
// Perfetto exporter names them via traceGroupStateName(); keep the
// two enumerations aligned.
static_assert(static_cast<int>(GroupState::Ready) == 0 &&
              static_cast<int>(GroupState::WaitMem) == 1 &&
              static_cast<int>(GroupState::WaitRetry) == 2 &&
              static_cast<int>(GroupState::WaitReconv) == 3 &&
              static_cast<int>(GroupState::WaitBarrier) == 4 &&
              static_cast<int>(GroupState::Dead) == 5,
              "trace/perfetto.cc state names mirror this order");

Wpu::Wpu(WpuId id, const SystemConfig &sysCfg, const Program &program,
         Memory &memory, MemSystem &msys, EventQueue &eq,
         KernelBarrier *kernelBar)
    : wpuId(id), cfg(sysCfg), policy(sysCfg.policy), prog(program),
      mem(memory), memsys(msys), events(eq), kbar(kernelBar),
      wstTable(sysCfg.wpu.wstEntries, sysCfg.wpu.numWarps),
      sched(sysCfg.wpu.schedSlots),
      slipCtl(sysCfg.policy, sysCfg.wpu.simdWidth)
{
    numThreads = cfg.wpu.numThreads();
    auditCadence = cfg.checkInvariants;
    if (getenv("DWS_CHECK_LANES"))
        auditCadence = 64; // legacy debugging hook
    // Slip adapts on an interval, revive probes stalls, and audits fire
    // on a cadence: all per-cycle duties that forbid skipping ticks.
    alwaysTick_ = policy.slip() || policy.reviveOnStall() ||
                  auditCadence != 0;
    events.bindWpu(wpuId, this);
    regs.assign(static_cast<size_t>(numThreads) * kNumRegs, 0);
    warps.resize(static_cast<size_t>(cfg.wpu.numWarps));
    warpBarriers.resize(static_cast<size_t>(cfg.wpu.numWarps));
    warpBarPc.assign(static_cast<size_t>(cfg.wpu.numWarps), kPcUnknown);
    stats.threadMisses.assign(static_cast<size_t>(numThreads), 0);
}

void
Wpu::setTracer(Tracer *t)
{
    trace_ = t;
    sched.setTracer(t, wpuId);
    wstTable.setTracer(t, wpuId);
}

TraceEpochSample
Wpu::traceSample() const
{
    TraceEpochSample s;
    s.issuedInstrs = stats.issuedInstrs;
    s.scalarInstrs = stats.scalarInstrs;
    s.readyListDepth = static_cast<std::uint32_t>(sched.readyCount());
    s.slotsUsed = static_cast<std::uint32_t>(sched.slotsUsed());
    s.wstInUse = static_cast<std::uint32_t>(wstTable.inUse());
    s.mshrInUse =
            static_cast<std::uint32_t>(memsys.l1MshrFile(wpuId).inUse());
    return s;
}

ThreadId
Wpu::tidOf(WarpId w, int lane) const
{
    return tidBase + w * cfg.wpu.simdWidth + lane;
}

std::int64_t &
Wpu::reg(WarpId w, int lane, int r)
{
    return regs[(static_cast<size_t>(w) * cfg.wpu.simdWidth + lane) *
                        kNumRegs + static_cast<size_t>(r)];
}

std::int64_t
Wpu::regAt(WarpId w, int lane, int r) const
{
    return regs[(static_cast<size_t>(w) * cfg.wpu.simdWidth + lane) *
                        kNumRegs + static_cast<size_t>(r)];
}

void
Wpu::launch(ThreadId base, int totalThreads)
{
    tidBase = base;
    const ThreadMask full = fullMask(cfg.wpu.simdWidth);
    for (WarpId w = 0; w < cfg.wpu.numWarps; w++) {
        Warp &warp = warps[static_cast<size_t>(w)];
        warp.id = w;
        warp.all = full;
        warp.halted = 0;
        for (int lane = 0; lane < cfg.wpu.simdWidth; lane++) {
            reg(w, lane, 0) = tidOf(w, lane);
            reg(w, lane, 1) = totalThreads;
        }
        BarrierRef exitBar = makeBarrier();
        exitBar->isExit = true;
        exitBar->pc = kPcExit;
        exitBar->expected = full;
        exitBar->warp = w;
        SimdGroup *g = createGroup(
                w, 0, full, Frame{0, kPcExit, full}, exitBar,
                GroupState::Ready, false);
        (void)g;
    }
}

// --------------------------------------------------------------------
// Group lifecycle
// --------------------------------------------------------------------

BarrierRef
Wpu::makeBarrier()
{
    // allocate_shared: barrier + control block are one pooled block.
    return std::allocate_shared<ReconvBarrier>(
            PoolAlloc<ReconvBarrier>(barrierPool));
}

SimdGroup *
Wpu::initGroup(SimdGroup *g, WarpId w, Pc pc, ThreadMask mask,
               BarrierRef barrier, GroupState state, bool branchLimited)
{
    g->id = nextGroupId++;
    g->warp = w;
    g->pc = pc;
    g->mask = mask;
    g->barrier = std::move(barrier);
    g->state = state;
    stateCount[static_cast<size_t>(state)]++;
    g->branchLimited = branchLimited;
    // Invariant: live groups of one warp drive disjoint lane sets.
    for (const SimdGroup *o : live) {
        if (o->warp == w && (o->mask & mask) != 0) {
            panic("warp %d: new group %d mask %llx overlaps group %d "
                  "mask %llx (state %s, pc %d)",
                  w, g->id, (unsigned long long)mask, o->id,
                  (unsigned long long)o->mask, groupStateName(o->state),
                  o->pc);
        }
    }
    live.push_back(g);
    DWS_TRACE(trace_, groupCreate(wpuId, w, g->id, mask, pc,
                                  static_cast<std::uint32_t>(state)));
    wstTable.addGroup(w);
    sched.requestSlot(g);
    return g;
}

SimdGroup *
Wpu::createGroup(WarpId w, Pc pc, ThreadMask mask,
                 std::vector<Frame> frames, BarrierRef barrier,
                 GroupState state, bool branchLimited)
{
    SimdGroup *g = groupArena.acquire();
    g->frames = std::move(frames);
    return initGroup(g, w, pc, mask, std::move(barrier), state,
                     branchLimited);
}

SimdGroup *
Wpu::createGroup(WarpId w, Pc pc, ThreadMask mask, const Frame &frame,
                 BarrierRef barrier, GroupState state, bool branchLimited)
{
    SimdGroup *g = groupArena.acquire();
    g->frames.push_back(frame); // recycled storage, already empty
    return initGroup(g, w, pc, mask, std::move(barrier), state,
                     branchLimited);
}

void
Wpu::destroyGroup(SimdGroup *g)
{
    DWS_TRACE(trace_, groupDestroy(wpuId, g->warp, g->id, g->mask, g->pc));
    stateCount[static_cast<size_t>(g->state)]--;
    g->state = GroupState::Dead;
    sched.updateReady(g);
    sched.releaseSlot(g);
    sched.dequeue(g->id);
    wstTable.removeGroup(g->warp);
    live.erase(std::remove(live.begin(), live.end(), g), live.end());
    groupArena.release(g);
}

SimdGroup *
Wpu::findGroup(GroupId id)
{
    for (SimdGroup *g : live)
        if (g->id == id)
            return g;
    return nullptr;
}

// --------------------------------------------------------------------
// Re-convergence machinery
// --------------------------------------------------------------------

void
Wpu::registerBarrier(const BarrierRef &b)
{
    warpBarriers[static_cast<size_t>(b->warp)].push_back(b);
}

void
Wpu::recheckWarpBarriers(WarpId w)
{
    // Copy: checkBarrier can complete barriers and mutate the registry.
    std::vector<BarrierRef> barriers =
            warpBarriers[static_cast<size_t>(w)];
    for (const auto &b : barriers)
        checkBarrier(b);
}

void
Wpu::arriveAtBarrier(const BarrierRef &b, ThreadMask mask, Pc meetPc)
{
    if (!b || b->isExit || b->done)
        return; // program exit: nothing to resume
    if (meetPc != kPcUnknown) {
        if (b->pc == kPcUnknown) {
            b->pc = meetPc; // BranchLimited: first sibling defines the stop
        } else if (mask != 0 && b->pc != meetPc) {
            panic("warp %d: siblings met at pc %d vs %d", b->warp, meetPc,
                  b->pc);
        }
    }
    if (mask != 0) {
        // The arriving split stays parked in the WST until the merge.
        b->parkedSplits++;
        wstTable.addParked(b->warp);
    }
    b->arrived |= mask;
    checkBarrier(b);
    if (!b->done && policy.slip())
        spawnNextCatchup(b, lastTickCycle);
}

void
Wpu::checkBarrier(const BarrierRef &b)
{
    if (b->isExit || b->done)
        return;
    const Warp &warp = warps[static_cast<size_t>(b->warp)];
    const ThreadMask need = b->expected & ~warp.halted;
    if ((b->arrived & need) != need)
        return;
    if (need == 0 && b->pc == kPcUnknown) {
        // All expected lanes died before any sibling reached a boundary:
        // nothing to resume at; propagate outward.
        b->done = true;
        wstTable.removeParked(b->warp, b->parkedSplits);
        auto &reg = warpBarriers[static_cast<size_t>(b->warp)];
        reg.erase(std::remove(reg.begin(), reg.end(), b), reg.end());
        if (b->outer)
            arriveAtBarrier(b->outer, 0, kPcUnknown);
        return;
    }
    completeBarrier(b);
}

void
Wpu::completeBarrier(const BarrierRef &b)
{
    b->done = true;
    wstTable.removeParked(b->warp, b->parkedSplits);
    auto &reg = warpBarriers[static_cast<size_t>(b->warp)];
    reg.erase(std::remove(reg.begin(), reg.end(), b), reg.end());
    stats.stackMerges++;
    DWS_TRACE(trace_, merge(TraceKind::MergeStack, wpuId, b->warp, 0,
                            b->expected,
                            static_cast<std::uint32_t>(b->pc)));
    if (getenv("DWS_TRACE"))
        fprintf(stderr, "COMPLETE wpu%d w%d pc=%d origRpc=%d "
                "expected=%llx arrived=%llx depth=%zu\n",
                wpuId, b->warp, b->pc, b->origRpc,
                (unsigned long long)b->expected,
                (unsigned long long)b->arrived, b->contFrames.size());
    std::vector<Frame> frames = b->contFrames;
    frames.push_back(Frame{b->pc, b->origRpc, b->expected});
    resumeFromFrames(b->warp, std::move(frames), b->outer);
}

void
Wpu::resumeFromFrames(WarpId w, std::vector<Frame> frames,
                      const BarrierRef &outer)
{
    const Warp &warp = warps[static_cast<size_t>(w)];
    const ThreadMask off = warp.halted | warp.slippedMask();
    while (!frames.empty() && (frames.back().mask & ~off) == 0)
        frames.pop_back();
    if (frames.empty()) {
        arriveAtBarrier(outer, 0, kPcUnknown);
        checkBarrier(outer);
        return;
    }
    const Frame &top = frames.back();
    SimdGroup *g = createGroup(w, top.pc, top.mask & ~off,
                               std::move(frames), outer,
                               GroupState::Ready, false);
    advanceControl(g);
}

bool
Wpu::advanceControl(SimdGroup *g)
{
    const Warp &warp = warps[static_cast<size_t>(g->warp)];
    const ThreadMask off = warp.halted | warp.slippedMask();
    while (true) {
        if (g->frames.empty())
            panic("group %d of warp %d has no frames", g->id, g->warp);
        Frame &top = g->frames.back();
        if (g->pc != top.rpc) {
            // BranchLimited splits stop at the next conditional branch.
            if (g->branchLimited && g->pc >= 0 && g->pc < prog.size() &&
                prog.at(g->pc).op == Op::Br) {
                const ThreadMask m = g->mask;
                const BarrierRef b = g->barrier;
                const Pc meet = g->pc;
                destroyGroup(g);
                arriveAtBarrier(b, m, meet);
                return false;
            }
            return true;
        }
        // Reached the re-convergence point of the top frame.
        if (policy.slip() && (warp.slippedMask() & top.mask) != 0) {
            // Slip: the stack cannot pop while lanes masked on this
            // frame are suspended waiting for memory — the boundary
            // handler converts them into catch-up groups first.
            return true;
        }
        [[maybe_unused]] const Pc poppedRpc = top.rpc;
        g->frames.pop_back();
        while (!g->frames.empty() &&
               (g->frames.back().mask & ~off) == 0) {
            g->frames.pop_back();
        }
        DWS_TRACE(trace_,
                  frame(false, wpuId, g->warp, g->id, g->mask, poppedRpc,
                        static_cast<std::uint32_t>(g->frames.size())));
        if (g->frames.empty()) {
            const ThreadMask m = g->mask;
            const BarrierRef b = g->barrier;
            const Pc meet = g->pc;
            destroyGroup(g);
            arriveAtBarrier(b, m, meet);
            return false;
        }
        g->mask = g->frames.back().mask & ~off;
        g->pc = g->frames.back().pc;
    }
}

// --------------------------------------------------------------------
// Issue path
// --------------------------------------------------------------------

void
Wpu::setGroupState(SimdGroup *g, GroupState s)
{
    if (g->state == s)
        return;
    DWS_TRACE(trace_,
              stateChange(wpuId, g->warp, g->id, g->mask,
                          static_cast<std::uint32_t>(g->state),
                          static_cast<std::uint32_t>(s)));
    stateCount[static_cast<size_t>(g->state)]--;
    stateCount[static_cast<size_t>(s)]++;
    g->state = s;
    sched.updateReady(g);
}

bool
Wpu::hasImminentWork() const
{
    // WaitRetry groups are event-driven (wakeRetry); only Ready groups
    // require cycle-by-cycle ticking.
    return stateCount[static_cast<size_t>(GroupState::Ready)] > 0;
}

void
Wpu::classifyStall()
{
    if (memWaiting())
        stats.memStallCycles++;
    else
        stats.otherStallCycles++;
}

void
Wpu::addStallCycles(std::uint64_t n)
{
    stallStreak += static_cast<int>(n > 1000 ? 1000 : n);
    nextUnaccounted += n;
    if (finished()) {
        stats.idleCycles += n;
        return;
    }
    if (memWaiting())
        stats.memStallCycles += n;
    else
        stats.otherStallCycles += n;
}

void
Wpu::accountStallsBefore(Cycle c)
{
    if (c <= nextUnaccounted)
        return;
    const std::uint64_t n = c - nextUnaccounted;
    nextUnaccounted = c;
    // No stallStreak bump: only WPUs without per-cycle duties are ever
    // skipped, and for those the streak is unobservable (revive-split
    // damping is the sole consumer and revive WPUs always tick).
    if (finished()) {
        stats.idleCycles += n;
        return;
    }
    if (memWaiting())
        stats.memStallCycles += n;
    else
        stats.otherStallCycles += n;
}

SimdGroup *
Wpu::pickExecutable(Cycle now)
{
    while (true) {
        SimdGroup *g = sched.pick(now);
        if (!g)
            return nullptr;
        // A partially issued access resumes without a new fetch.
        if (g->pending.active)
            return g;
        // Laggard-first among ready siblings of the same warp: letting
        // the split with the smallest pc run makes it catch up to its
        // waiting sibling so PC-based re-convergence can re-unite them
        // (the paper's scheduler likewise biases selection to help the
        // PC comparison, Section 4.5).
        if (policy.pcReconv() && g->fromBranchSplit &&
            wstTable.groups(g->warp) > 1) {
            // Laggard-first among nearby *branch-split* siblings: the
            // two sides of a short diamond re-unite fastest when the
            // trailing side runs first (PC re-convergence then merges
            // them at the join). Memory splits are exempt: their
            // run-ahead must keep running to prefetch for the
            // fall-behind (Section 5.1).
            constexpr Pc kCatchupWindow = 24;
            for (SimdGroup *s : live) {
                if (s != g && s->warp == g->warp && s->issuable(now) &&
                    s->fromBranchSplit && !s->pending.active &&
                    s->pc < g->pc && g->pc - s->pc <= kCatchupWindow &&
                    s->barrier == g->barrier) {
                    g = s;
                }
            }
        }
        // Adaptive slip: forced re-convergence boundaries.
        if (policy.slip() && slipHandleBoundary(g, now))
            continue;
        // I-fetch through the I-cache.
        const Addr iaddr = kInstrAddrBase + prog.instrAddr(g->pc);
        const Addr iline = memsys.icache(wpuId).lineAddr(iaddr);
        const LineResponse resp = memsys.accessInstr(wpuId, iline, now);
        if (resp.retry) {
            g->readyAt = now + 1;
            continue;
        }
        if (!resp.l1Hit) {
            setGroupState(g, GroupState::WaitMem);
            g->pendingMem = 0;
            g->readyAt = resp.readyAt;
            scheduleWake(g->id, 0, resp.readyAt);
            continue;
        }
        return g;
    }
}

void
Wpu::runInvariantAudit(Cycle now)
{
    const std::vector<Violation> violations =
            InvariantChecker::auditWpu(*this, now);
    if (violations.empty())
        return;
    std::string diag = dumpState();
    for (const Violation &v : violations) {
        diag += "invariant violation: ";
        diag += toString(v);
        diag += "\n";
    }
    simAbort(SimOutcome::InvariantViolation, now, std::move(diag),
             "cycle %llu wpu %d: %zu invariant violations (first: %s)",
             (unsigned long long)now, wpuId, violations.size(),
             toString(violations.front()).c_str());
}

void
Wpu::scheduleWake(GroupId id, ThreadMask lanes, Cycle at)
{
    events.schedule(SimEvent{.when = at,
                             .kind = EventKind::WakeGroup,
                             .wpu = wpuId,
                             .group = id,
                             .lanes = lanes});
}

void
Wpu::scheduleWakeRetry(GroupId id, Cycle at)
{
    events.schedule(SimEvent{.when = at,
                             .kind = EventKind::WakeRetry,
                             .wpu = wpuId,
                             .group = id});
}

void
Wpu::onSimEvent(const SimEvent &ev)
{
    // Classify the backlog with the pre-event group states; the event's
    // own cycle is accounted by the tick (or successor) at `ev.when`.
    accountStallsBefore(ev.when);
    switch (ev.kind) {
      case EventKind::WakeGroup:
        wake(ev.group, static_cast<ThreadMask>(ev.lanes), ev.when);
        break;
      case EventKind::WakeRetry:
        wakeRetry(ev.group, ev.when);
        break;
      default:
        panic("wpu %d got non-wake event %s", wpuId,
              eventKindName(ev.kind));
    }
}

bool
Wpu::tick(Cycle now)
{
    accountStallsBefore(now);
    inTick_ = true;
    const bool issued = tickImpl(now);
    inTick_ = false;
    nextUnaccounted = now + 1; // this cycle is now credited
    return issued;
}

bool
Wpu::tickImpl(Cycle now)
{
    lastTickCycle = now;
    if (auditCadence != 0 && now >= auditNext) {
        // One compare per tick; the modulo only runs at candidates
        // (same audit cycles as `now % cadence == 0` every tick).
        if (now % auditCadence == 0)
            runInvariantAudit(now);
        auditNext = (now / auditCadence + 1) * auditCadence;
    }
    if (finished()) {
        stats.idleCycles++;
        return false;
    }

    if (policy.slip() && now - lastSlipAdapt >= slipCtl.interval()) {
        slipCtl.adapt(stats.activeCycles - lastActive,
                      stats.memStallCycles - lastMemStall,
                      now - lastSlipAdapt);
        lastSlipAdapt = now;
        lastActive = stats.activeCycles;
        lastMemStall = stats.memStallCycles;
    }

    SimdGroup *g = pickExecutable(now);
    if (!g) {
        classifyStall();
        stallStreak++;
        // Revive only once a stall has outlasted a cache hit: transient
        // single-cycle bubbles between hit-waiting warps are not worth
        // a subdivision (they resolve by themselves).
        if (policy.reviveOnStall() &&
            stallStreak > cfg.wpu.dcache.hitLatency) {
            tryReviveSplit(now);
        }
        return false;
    }
    stallStreak = 0;
    issue(g, now);
    stats.activeCycles++;
    return true;
}

void
Wpu::issue(SimdGroup *g, Cycle now)
{
    // Resume a partially issued SIMD memory access first.
    if (g->pending.active) {
        issueLines(g, now);
        return;
    }

    const Instr &in = prog.at(g->pc);

    // Adaptive slip: fall-behind threads re-unite when the run-ahead
    // revisits their memory instruction.
    if (policy.slip())
        slipMergeCheck(g, now);

    // PC-based re-convergence (Section 4.5): re-unite ready sibling
    // splits whose pc matches the running split's. The paper compares
    // at cache accesses; our splits park one instruction after their
    // access (the load has architecturally completed), so the running
    // split performs the comparison at every issue in a subdivided
    // warp — same merge events, shifted by one instruction.
    if (policy.pcReconv() && wstTable.groups(g->warp) > 1)
        tryPcMerge(g, now);

    stats.issuedInstrs++;
    stats.scalarInstrs += static_cast<std::uint64_t>(popcount(g->mask));

    if (oracle_) {
        for (int lane : Lanes(g->mask))
            oracle_->onIssue(g->pc, tidOf(g->warp, lane));
    }

    switch (in.op) {
      case Op::Ld:
      case Op::St:
        execMem(g, in, now);
        return;
      case Op::Br:
        execBranch(g, in, now);
        return;
      case Op::Jmp:
        g->pc = in.target;
        advanceControl(g);
        return;
      case Op::Bar:
        execBar(g, now);
        return;
      case Op::Halt:
        execHalt(g, now);
        return;
      default:
        execAlu(g, in);
        g->pc++;
        advanceControl(g);
        return;
    }
}

void
Wpu::execAlu(SimdGroup *g, const Instr &in)
{
    if (in.op == Op::Nop)
        return;
    for (int lane : Lanes(g->mask)) {
        const std::int64_t a = reg(g->warp, lane, in.ra);
        const std::int64_t b = reg(g->warp, lane, in.rb);
        reg(g->warp, lane, in.rd) = evalAlu(in.op, a, b, in.imm);
    }
}

// --------------------------------------------------------------------
// Branches
// --------------------------------------------------------------------

void
Wpu::execBranch(SimdGroup *g, const Instr &in, Cycle now)
{
    (void)now;
    stats.branches++;
    ThreadMask taken = 0;
    for (int lane : Lanes(g->mask)) {
        if (reg(g->warp, lane, in.ra) != 0)
            taken |= laneBit(lane);
    }
    const ThreadMask notTaken = g->mask & ~taken;

    // Predicted-vs-observed divergence accounting for the static
    // analysis (analysis/divergence.hh). A mispredict would falsify the
    // pass's soundness argument; the invariant audit treats it as fatal.
    const bool predicted = prog.branchInfo(g->pc).mayDiverge;
    if (predicted)
        stats.staticDivergentBranchExecs++;
    else
        stats.staticUniformBranchExecs++;
    if (!predicted && taken != 0 && notTaken != 0)
        stats.staticDivergenceMispredicts++;

    if (notTaken == 0) {
        g->pc = in.target;
        advanceControl(g);
        return;
    }
    if (taken == 0) {
        g->pc++;
        advanceControl(g);
        return;
    }

    stats.divergentBranches++;
    const bool loneWarp = wstTable.groups(g->warp) == 1;
    const bool want = policy.wantBranchSplit(loneWarp, in,
                                             popcount(g->mask)) &&
                      !g->branchLimited;
    if (want && wstTable.canSubdivide(g->warp)) {
        branchSplit(g, in, taken, notTaken);
        return;
    }
    if (want)
        stats.wstFullDenials++;
    conventionalBranch(g, in, taken, notTaken);
}

void
Wpu::conventionalBranch(SimdGroup *g, const Instr &in, ThreadMask taken,
                        ThreadMask notTaken)
{
    const Pc rpc = prog.branchInfo(g->pc).ipdom;
    Frame &top = g->frames.back();
    top.pc = rpc; // continuation once both paths re-converge
    g->frames.push_back(Frame{g->pc + 1, rpc, notTaken});
    g->frames.push_back(Frame{in.target, rpc, taken});
    DWS_TRACE(trace_,
              frame(true, wpuId, g->warp, g->id, notTaken, rpc,
                    static_cast<std::uint32_t>(g->frames.size() - 1)));
    DWS_TRACE(trace_,
              frame(true, wpuId, g->warp, g->id, taken, rpc,
                    static_cast<std::uint32_t>(g->frames.size())));
    g->mask = taken;
    g->pc = in.target;
    advanceControl(g);
}

BarrierRef
Wpu::splitBarrier(SimdGroup *g, bool branchLimited)
{
    // The paper keeps ONE re-convergence point per warp: warp-splits
    // "keep being subdivided upon future divergent branches until they
    // reach the post-dominator associated with the top of the
    // re-convergence stack" (Section 4.4). A split subdividing again
    // therefore joins its existing barrier rather than nesting a new
    // one — this is also what lets PC-based re-convergence merge any
    // two splits of the warp.
    if (!g->barrier->isExit && !g->barrier->done &&
        g->frames.size() == 1 &&
        g->barrier->origRpc == g->frames.back().rpc) {
        return g->barrier;
    }
    const Frame &top = g->frames.back();
    BarrierRef b = makeBarrier();
    b->pc = branchLimited ? kPcUnknown : top.rpc;
    b->origRpc = top.rpc;
    b->expected = top.mask;
    b->contFrames.assign(g->frames.begin(), g->frames.end() - 1);
    b->outer = g->barrier;
    b->warp = g->warp;
    registerBarrier(b);
    return b;
}

void
Wpu::branchSplit(SimdGroup *g, const Instr &in, ThreadMask taken,
                 ThreadMask notTaken)
{
    stats.branchSplits++;
    [[maybe_unused]] const Pc brPc = g->pc;
    const Frame top = g->frames.back();
    BarrierRef b = splitBarrier(g, false);

    const Pc fallPc = g->pc + 1;

    // The issuing group becomes the taken-path split...
    g->frames.clear();
    g->frames.push_back(Frame{in.target, top.rpc, taken});
    g->mask = taken;
    g->pc = in.target;
    g->barrier = b;

    // ... and a new split takes the fall-through path. Both are active
    // scheduling entities; their execution can interleave (Figure 6d).
    g->fromBranchSplit = true;
    SimdGroup *other = createGroup(
            g->warp, fallPc, notTaken, Frame{fallPc, top.rpc, notTaken},
            b, GroupState::Ready, false);
    other->fromBranchSplit = true;
    DWS_TRACE(trace_, split(TraceKind::SplitBranch, wpuId, g->warp, g->id,
                            notTaken, other->id, brPc));
    advanceControl(other);
    advanceControl(g);
}

// --------------------------------------------------------------------
// Memory
// --------------------------------------------------------------------

void
Wpu::execMem(SimdGroup *g, const Instr &in, Cycle now)
{
    const bool isStore = (in.op == Op::St);
    stats.memAccesses++;

    PendingAccess &pa = g->pending;
    pa.reset();
    pa.active = true;
    pa.write = isStore;

    CacheArray &d = memsys.dcache(wpuId);
    for (int lane : Lanes(g->mask)) {
        const Addr addr = static_cast<Addr>(
                reg(g->warp, lane, in.ra) + in.imm);
        if (addr % kWordBytes != 0 || addr >= mem.sizeBytes()) {
            panic("wpu %d warp %d lane %d group %d: bad address %#llx "
                  "at pc %d (ra r%d=%lld imm %lld)",
                  wpuId, g->warp, lane, g->id,
                  (unsigned long long)addr, g->pc, in.ra,
                  (long long)reg(g->warp, lane, in.ra),
                  (long long)in.imm);
        }
        if (oracle_)
            oracle_->onMemAccess(g->pc, tidOf(g->warp, lane), isStore,
                                 addr);
        if (in.op == Op::Ld)
            reg(g->warp, lane, in.rd) = mem.read(addr);
        else
            mem.write(addr, reg(g->warp, lane, in.rb));
        const Addr lineA = d.lineAddr(addr);
        bool found = false;
        for (size_t i = 0; i < pa.lines.size(); i++) {
            if (pa.lines[i] == lineA) {
                pa.laneMasks[i] |= laneBit(lane);
                found = true;
                break;
            }
        }
        if (!found) {
            pa.lines.push_back(lineA);
            pa.laneMasks.push_back(laneBit(lane));
        }
    }

    g->memPc = g->pc;
    g->pc = g->pc + 1; // threads resume past the access
    setGroupState(g, GroupState::WaitMem);
    g->pendingMem = 0;

    issueLines(g, now);
}

void
Wpu::issueLines(SimdGroup *g, Cycle now)
{
    PendingAccess &pa = g->pending;
    CacheArray &d = memsys.dcache(wpuId);

    // Bank-conflict queuing among the lines of this attempt: one extra
    // cycle per additional line mapping to the same bank. All three
    // buffers are members so their storage is reused across issues.
    scratchBankUse.assign(static_cast<size_t>(d.config().banks), 0);
    std::vector<int> &bankUse = scratchBankUse;

    scratchLines.clear();
    scratchMasks.clear();
    std::vector<Addr> &remaining = scratchLines;
    std::vector<ThreadMask> &remainingMasks = scratchMasks;
    Cycle retryAt = 0;
    for (size_t i = 0; i < pa.lines.size(); i++) {
        const Addr lineA = pa.lines[i];
        const ThreadMask lanes = pa.laneMasks[i];
        const int bank = d.bankOf(lineA);
        const int delay = bankUse[static_cast<size_t>(bank)];
        const LineResponse resp =
                memsys.accessData(wpuId, lineA, pa.write, delay, now);
        if (resp.retry) {
            remaining.push_back(lineA);
            remainingMasks.push_back(lanes);
            // Re-attempt when the blocking resource frees (earliest
            // in-flight MSHR completion), not by busy-spinning on the
            // issue port.
            if (resp.readyAt > 0 &&
                (retryAt == 0 || resp.readyAt < retryAt)) {
                retryAt = resp.readyAt;
            }
            continue;
        }
        bankUse[static_cast<size_t>(bank)]++;
        if (delay > 0)
            d.stats.bankConflicts++;
        if (resp.l1Hit) {
            pa.hitMask |= lanes;
            if (resp.readyAt > pa.hitReadyAt)
                pa.hitReadyAt = resp.readyAt;
        } else {
            pa.missMask |= lanes;
            if (resp.readyAt > pa.missReadyAt)
                pa.missReadyAt = resp.readyAt;
            g->pendingMem |= lanes;
            for (int lane : Lanes(lanes)) {
                stats.threadMisses[static_cast<size_t>(
                        g->warp * cfg.wpu.simdWidth + lane)]++;
            }
            scheduleWake(g->id, lanes, resp.readyAt);
        }
    }
    pa.lines.swap(remaining);
    pa.laneMasks.swap(remainingMasks);

    if (!pa.lines.empty()) {
        setGroupState(g, GroupState::WaitRetry);
        g->readyAt = std::max(retryAt, now + 1);
        scheduleWakeRetry(g->id, g->readyAt);
        return;
    }
    finalizeAccess(g, now);
}

void
Wpu::finalizeAccess(SimdGroup *g, Cycle now)
{
    // Only the four outcome scalars survive the access; the line
    // buffers are empty once every line has issued. No copy of the
    // PendingAccess (and its vectors) is materialized.
    const ThreadMask hitMask = g->pending.hitMask;
    const ThreadMask missMask = g->pending.missMask;
    Cycle hitReadyAt = g->pending.hitReadyAt;
    const Cycle missReadyAt = g->pending.missReadyAt;
    g->pending.reset();

    if (missMask != 0)
        stats.missAccesses++;
    const bool divergent = hitMask != 0 && missMask != 0;
    if (divergent)
        stats.divergentAccesses++;

    if (hitReadyAt == 0)
        hitReadyAt = now + cfg.wpu.dcache.hitLatency;

    setGroupState(g, GroupState::WaitMem);
    g->readyAt = hitReadyAt;

    Warp &warp = warps[static_cast<size_t>(g->warp)];

    // Adaptive slip: suspend the missing threads, let the hitters run.
    // Only a warp that is a single clean group may slip: during a
    // catch-up phase (pending boundary barrier) further slipping could
    // strand lanes behind a barrier nobody completes.
    if (policy.slip() && divergent &&
        wstTable.groups(g->warp) == 1 &&
        wstTable.parked(g->warp) == 0 &&
        warpBarriers[static_cast<size_t>(g->warp)].empty() &&
        slipCtl.maySlip(popcount(warp.slippedMask()),
                        popcount(missMask))) {
        if (getenv("DWS_TRACE") && g->warp == 0)
            fprintf(stderr, "SLIP w%d pc=%d miss=%llx gmask=%llx\n",
                    g->warp, g->memPc,
                    (unsigned long long)missMask,
                    (unsigned long long)g->mask);
        warp.slipEntries.push_back(
                SlipEntry{missMask, g->memPc, missReadyAt});
        g->mask &= ~missMask;
        g->pendingMem = 0;
        stats.slipsTaken++;
        scheduleWake(g->id, 0, std::max(hitReadyAt, now + 1));
        return;
    }

    if (missMask == 0) {
        scheduleWake(g->id, 0, std::max(hitReadyAt, now + 1));
        return;
    }

    if (divergent && !policy.slip()) {
        const bool want =
                policy.wantMemSplit(anyOtherReady(g), popcount(g->mask));
        if (want && wstTable.canSubdivide(g->warp)) {
            memSplit(g, hitMask, hitReadyAt, now);
            return;
        }
        if (want)
            stats.wstFullDenials++;
    }
    // Conventional: the group waits for all lanes; the pending wake
    // events will ready it once pendingMem drains.
}

void
Wpu::memSplit(SimdGroup *g, ThreadMask readyMask, Cycle readyAt, Cycle now)
{
    stats.memSplits++;
    const Frame top = g->frames.back();
    const bool bl = policy.branchLimited();
    BarrierRef b = splitBarrier(g, bl);

    // Fall-behind split first: the issuing group keeps its id (and
    // shrinks to the missing lanes) so in-flight completion events
    // still find the waiting lanes.
    const ThreadMask miss = g->mask & ~readyMask;
    g->mask = miss;
    g->frames.clear();
    g->frames.push_back(Frame{g->pc, top.rpc, miss});
    g->barrier = b;
    g->branchLimited = bl;
    // state stays WaitMem; pendingMem already covers the missing lanes.

    // Run-ahead split: threads whose requests are satisfied.
    SimdGroup *run = createGroup(
            g->warp, g->pc, readyMask,
            Frame{g->pc, top.rpc, readyMask}, b, GroupState::WaitMem, bl);
    run->readyAt = readyAt;
    DWS_TRACE(trace_, split(traceReviveSplit_ ? TraceKind::SplitRevive
                                              : TraceKind::SplitMem,
                            wpuId, g->warp, g->id, readyMask, run->id,
                            g->pc));
    traceReviveSplit_ = false;
    scheduleWake(run->id, 0, std::max(readyAt, now + 1));
}

void
Wpu::wakeRetry(GroupId id, Cycle now)
{
    SimdGroup *g = findGroup(id);
    if (!g || g->state != GroupState::WaitRetry || now < g->readyAt)
        return;
    setGroupState(g, GroupState::Ready);
    sched.requestSlot(g);
}

void
Wpu::wake(GroupId id, ThreadMask lanes, Cycle now)
{
    SimdGroup *g = findGroup(id);
    if (!g || g->state == GroupState::Dead)
        return;
    g->pendingMem &= ~lanes;
    if (g->state != GroupState::WaitMem || g->pendingMem != 0)
        return;
    if (now < g->readyAt) {
        scheduleWake(id, 0, g->readyAt);
        return;
    }
    becomeReady(g, now);
}

void
Wpu::becomeReady(SimdGroup *g, Cycle now)
{
    setGroupState(g, GroupState::Ready);
    sched.requestSlot(g);
    if (!advanceControl(g))
        return;
    // PC-based re-convergence also fires when a split wakes up at a pc
    // where a ready sibling already waits ("resumed warp-splits from
    // the ready queue" are the natural comparison point, Section 4.5).
    if (policy.pcReconv() && !policy.slip() &&
        wstTable.groups(g->warp) > 1) {
        tryPcMerge(g, now);
    }
}

bool
Wpu::anyOtherReady(const SimdGroup *g) const
{
    // LazySplit/ReviveSplit subdivide only when "all other SIMD groups
    // are waiting for memory" (Section 5.2). A group merely paying the
    // D-cache hit latency is about to issue again and can hide latency,
    // so it does not count as waiting.
    const int hitLat = cfg.wpu.dcache.hitLatency;
    for (const SimdGroup *o : live) {
        if (o == g)
            continue;
        if (o->state == GroupState::Ready)
            return true;
        if (o->state == GroupState::WaitMem && o->pendingMem == 0 &&
            o->readyAt <= lastTickCycle + hitLat) {
            return true;
        }
    }
    return false;
}

void
Wpu::tryReviveSplit(Cycle now)
{
    for (SimdGroup *g : live) {
        if (g->state != GroupState::WaitMem || g->pendingMem == 0)
            continue;
        const ThreadMask done = g->doneLanes();
        if (done == 0 || now < g->readyAt)
            continue;
        if (popcount(g->mask) < policy.config().minSplitWidth)
            continue;
        if (!wstTable.canSubdivide(g->warp)) {
            stats.wstFullDenials++;
            return;
        }
        traceReviveSplit_ = true; // label the split record SplitRevive
        memSplit(g, done, now, now);
        return; // only one group is subdivided at a time
    }
}

void
Wpu::tryPcMerge(SimdGroup *g, Cycle now)
{
    (void)now;
    if (g->frames.size() != 1)
        return;
    // Collect merge candidates first: merging mutates `live`.
    std::vector<SimdGroup *> candidates;
    for (SimdGroup *s : live) {
        if (s == g || s->warp != g->warp)
            continue;
        if (s->state != GroupState::Ready)
            continue;
        if (s->pc != g->pc || s->frames.size() != 1)
            continue;
        if (s->barrier != g->barrier)
            continue;
        if (s->branchLimited != g->branchLimited)
            continue;
        candidates.push_back(s);
    }
    for (SimdGroup *s : candidates) {
        g->mask |= s->mask;
        g->frames.back().mask |= s->frames.back().mask;
        stats.pcMerges++;
        DWS_TRACE(trace_, merge(TraceKind::MergePc, wpuId, g->warp, g->id,
                                g->mask,
                                static_cast<std::uint32_t>(s->id)));
        destroyGroup(s);
    }
}

// --------------------------------------------------------------------
// Barriers and termination
// --------------------------------------------------------------------

void
Wpu::execBar(SimdGroup *g, Cycle now)
{
    const WarpId w = g->warp;
    if (warpBarPc[static_cast<size_t>(w)] != kPcUnknown &&
        warpBarPc[static_cast<size_t>(w)] != g->pc) {
        panic("warp %d: groups at different kernel barriers (%d vs %d)",
              w, warpBarPc[static_cast<size_t>(w)], g->pc);
    }
    warpBarPc[static_cast<size_t>(w)] = g->pc;
    setGroupState(g, GroupState::WaitBarrier);
    sched.releaseSlot(g);
    DWS_TRACE(trace_, barrier(false, wpuId, w, g->id, g->mask,
                              static_cast<std::uint32_t>(g->pc)));
    if (getenv("DWS_TRACE"))
        fprintf(stderr, "[%llu] BAR-ARRIVE wpu%d warp%d group%d pc=%d "
                "mask=%llx\n", (unsigned long long)now, wpuId, w, g->id,
                g->pc, (unsigned long long)g->mask);
    if (oracle_) {
        for (int lane : Lanes(g->mask))
            oracle_->onBarrier(g->pc, tidOf(g->warp, lane));
    }
    kbar->arrive(popcount(g->mask), g->pc, now);
}

void
Wpu::releaseKernelBarrier(Cycle now, WpuId releaser)
{
    // Stall accounting for the release cycle. The releaser's own tick
    // is mid-flight and credits `now` itself (as an issue). WPUs after
    // it in the tick order still tick at `now` post-release, so only
    // their backlog before `now` belongs to the barrier wait; WPUs
    // before it were already ticked or skipped at `now`, so the wait
    // extends through `now` inclusive.
    if (wpuId != releaser)
        accountStallsBefore(wpuId > releaser ? now : now + 1);
    int releasedGroups = 0; // trace accounting only
    for (WarpId w = 0; w < cfg.wpu.numWarps; w++) {
        std::vector<SimdGroup *> waiting;
        for (SimdGroup *g : live) {
            if (g->warp != w)
                continue;
            if (g->state != GroupState::WaitBarrier)
                panic("kernel barrier released while warp %d group %d "
                      "is %s", w, g->id, groupStateName(g->state));
            waiting.push_back(g);
        }
        if (waiting.empty())
            continue;
        const Pc barPc = warpBarPc[static_cast<size_t>(w)];
        warpBarPc[static_cast<size_t>(w)] = kPcUnknown;
        releasedGroups += static_cast<int>(waiting.size());
        for (SimdGroup *g : waiting)
            destroyGroup(g);
        warpBarriers[static_cast<size_t>(w)].clear();
        wstTable.clearParked(w);
        Warp &warp = warps[static_cast<size_t>(w)];
        if (!warp.slipEntries.empty())
            panic("wpu %d warp %d: slip entries survived a kernel "
                  "barrier", wpuId, w);
        const ThreadMask alive = warp.alive();
        if (alive == 0)
            continue;
        BarrierRef exitBar = makeBarrier();
        exitBar->isExit = true;
        exitBar->pc = kPcExit;
        exitBar->expected = alive;
        exitBar->warp = w;
        SimdGroup *g = createGroup(
                w, barPc + 1, alive, Frame{barPc + 1, kPcExit, alive},
                exitBar, GroupState::Ready, false);
        advanceControl(g);
    }
    DWS_TRACE(trace_,
              barrier(true, wpuId, 0, 0, 0,
                      static_cast<std::uint32_t>(releasedGroups)));
}

void
Wpu::haltLanes(SimdGroup *g, Cycle now)
{
    Warp &warp = warps[static_cast<size_t>(g->warp)];
    const ThreadMask lanes = g->mask;
    warp.halted |= lanes;
    haltedThreads += popcount(lanes);
    const WarpId w = g->warp;

    // Walk the stack the way a re-convergence pop would.
    const ThreadMask off = warp.halted | warp.slippedMask();
    while (!g->frames.empty() &&
           (g->frames.back().mask & ~off) == 0) {
        g->frames.pop_back();
    }
    if (g->frames.empty()) {
        const BarrierRef b = g->barrier;
        destroyGroup(g);
        arriveAtBarrier(b, 0, kPcUnknown);
        checkBarrier(b);
    } else {
        g->mask = g->frames.back().mask & ~off;
        g->pc = g->frames.back().pc;
        advanceControl(g);
    }

    recheckWarpBarriers(w);
    kbar->onHalt(popcount(lanes), now);

    if (policy.slip() && !warps[static_cast<size_t>(w)].slipEntries.empty()
        && wstTable.groups(w) == 0) {
        slipReleaseOrphans(w, now);
    }
}

void
Wpu::execHalt(SimdGroup *g, Cycle now)
{
    haltLanes(g, now);
}

// --------------------------------------------------------------------
// Adaptive slip
// --------------------------------------------------------------------

void
Wpu::slipMergeCheck(SimdGroup *g, Cycle now)
{
    Warp &warp = warps[static_cast<size_t>(g->warp)];
    if (warp.slipEntries.empty() || getenv("DWS_NO_SLIP_MERGE"))
        return;
    for (size_t i = 0; i < warp.slipEntries.size();) {
        SlipEntry &e = warp.slipEntries[i];
        // A suspended thread set may only re-unite with a group whose
        // current frame already masks its lanes (the frame they were
        // suspended from or one of its re-convergence ancestors).
        // Merging into an unrelated group (e.g. a catch-up split
        // passing the same pc) would smuggle the lanes into a barrier
        // that does not expect them.
        if (e.pc == g->pc && e.readyAt <= now &&
            (e.mask & ~warp.halted & ~g->frames.back().mask) == 0) {
            const ThreadMask lanes = e.mask & ~warp.halted;
            if (getenv("DWS_CHECK_MERGE")) {
                const Instr &min = prog.at(e.pc);
                if (min.op == Op::Ld) {
                    for (int lane : Lanes(lanes)) {
                        const Addr a = static_cast<Addr>(
                                reg(g->warp, lane, min.ra) + min.imm);
                        const std::int64_t nowV = mem.read(a);
                        const std::int64_t oldV =
                                reg(g->warp, lane, min.rd);
                        if (nowV != oldV)
                            fprintf(stderr, "MERGE-DIFF wpu%d w%d lane%d "
                                    "pc=%d addr=%llx old=%lld now=%lld\n",
                                    wpuId, g->warp, lane, e.pc,
                                    (unsigned long long)a,
                                    (long long)oldV, (long long)nowV);
                    }
                }
            }
            if (getenv("DWS_TRACE") && g->warp == 0)
                fprintf(stderr, "[%llu] MERGE w%d pc=%d lanes=%llx gmask=%llx\n",
                        (unsigned long long)now, g->warp, g->pc,
                        (unsigned long long)lanes, (unsigned long long)g->mask);
            g->mask |= lanes;
            // The lanes are already masked on this frame and all of
            // its ancestors (stack construction), so no frame update
            // is needed.
            warp.slipEntries.erase(
                    warp.slipEntries.begin() +
                    static_cast<std::ptrdiff_t>(i));
        } else {
            i++;
        }
    }
}

bool
Wpu::slipHandleBoundary(SimdGroup *g, Cycle now)
{
    Warp &warp = warps[static_cast<size_t>(g->warp)];
    if (warp.slipEntries.empty())
        return false;
    const Instr &in = prog.at(g->pc);
    const bool branchStop = (in.op == Op::Br) && !policy.slipBranchBypass();
    const bool barStop = (in.op == Op::Bar) || (in.op == Op::Halt);
    // A re-convergence point whose frame still masks suspended lanes is
    // also a forced boundary: the stack may not pop past them.
    const bool rpcStop =
            g->pc == g->frames.back().rpc &&
            (warp.slippedMask() & g->frames.back().mask) != 0;
    if (!branchStop && !barStop && !rpcStop)
        return false;

    // Only entries masked on the current frame can catch up to this
    // boundary; entries belonging to an outer frame (possible under
    // BranchBypass) stay suspended until the stack returns to their
    // level, where the rpc rule above forces their re-convergence.
    const ThreadMask frameMask = g->frames.back().mask;
    bool anyCovered = false;
    for (const SlipEntry &e : warp.slipEntries) {
        if ((e.mask & ~warp.halted & frameMask) != 0) {
            anyCovered = true;
            break;
        }
    }
    if (!anyCovered)
        return false; // proceed; outer-level entries resolve later

    stats.slipStallsAtBranch++;

    // Convert into a barrier re-convergence: the runner parks, the
    // suspended thread sets catch up to the boundary pc.
    const Frame top = g->frames.back();
    BarrierRef b = makeBarrier();
    b->pc = g->pc;
    b->origRpc = top.rpc;
    b->expected = top.mask;
    b->contFrames.assign(g->frames.begin(), g->frames.end() - 1);
    b->outer = g->barrier;
    b->warp = g->warp;
    registerBarrier(b);

    const Pc stopPc = g->pc;
    const ThreadMask runnerMask = g->mask;
    if (getenv("DWS_TRACE"))
        fprintf(stderr, "BOUNDARY wpu%d w%d stop=%d origRpc=%d "
                "expected=%llx runner=%llx nent=%zu depth=%zu\n",
                wpuId, g->warp, stopPc, b->origRpc,
                (unsigned long long)b->expected,
                (unsigned long long)runnerMask, warp.slipEntries.size(),
                b->contFrames.size());
    destroyGroup(g);
    arriveAtBarrier(b, runnerMask, stopPc);
    // Unlike DWS, slip has no extra scheduling entities (paper Section
    // 5.7): suspended thread sets catch up to the boundary ONE AT A
    // TIME; spawnNextCatchup() chains the rest as each one arrives.
    spawnNextCatchup(b, now);
    return true;
}

void
Wpu::spawnNextCatchup(const BarrierRef &b, Cycle now)
{
    if (b->done)
        return;
    Warp &warp = warps[static_cast<size_t>(b->warp)];
    // Earliest-ready entry whose lanes this barrier still expects.
    size_t best = warp.slipEntries.size();
    for (size_t i = 0; i < warp.slipEntries.size(); i++) {
        const SlipEntry &e = warp.slipEntries[i];
        const ThreadMask m = e.mask & ~warp.halted;
        if (m == 0 || (m & b->expected & ~b->arrived) != m)
            continue;
        if (best == warp.slipEntries.size() ||
            e.readyAt < warp.slipEntries[best].readyAt) {
            best = i;
        }
    }
    if (best == warp.slipEntries.size()) {
        checkBarrier(b);
        return;
    }
    const SlipEntry e = warp.slipEntries[best];
    warp.slipEntries.erase(warp.slipEntries.begin() +
                           static_cast<std::ptrdiff_t>(best));
    const ThreadMask m = e.mask & ~warp.halted;
    SimdGroup *c = createGroup(
            b->warp, e.pc, m, Frame{e.pc, b->pc, m}, b,
            e.readyAt <= now ? GroupState::Ready : GroupState::WaitMem,
            false);
    if (c->state == GroupState::WaitMem) {
        c->readyAt = e.readyAt;
        scheduleWake(c->id, 0, std::max(e.readyAt, now + 1));
    }
}

void
Wpu::slipReleaseOrphans(WarpId w, Cycle now)
{
    Warp &warp = warps[static_cast<size_t>(w)];
    std::vector<SlipEntry> entries = std::move(warp.slipEntries);
    warp.slipEntries.clear();
    for (const SlipEntry &e : entries) {
        const ThreadMask m = e.mask & ~warp.halted;
        if (m == 0)
            continue;
        BarrierRef exitBar = makeBarrier();
        exitBar->isExit = true;
        exitBar->pc = kPcExit;
        exitBar->expected = m;
        exitBar->warp = w;
        SimdGroup *c = createGroup(
                w, e.pc, m, Frame{e.pc, kPcExit, m}, exitBar,
                e.readyAt <= now ? GroupState::Ready : GroupState::WaitMem,
                false);
        if (c->state == GroupState::WaitMem) {
            c->readyAt = e.readyAt;
            scheduleWake(c->id, 0, e.readyAt);
        }
    }
}

// --------------------------------------------------------------------
// Diagnostics
// --------------------------------------------------------------------

std::string
Wpu::stateLine() const
{
    std::ostringstream os;
    os << "wpu" << wpuId << ": halted " << haltedThreads << "/"
       << numThreads << " groups " << live.size();
    static const GroupState kStates[] = {
            GroupState::Ready,      GroupState::WaitMem,
            GroupState::WaitRetry,  GroupState::WaitReconv,
            GroupState::WaitBarrier};
    for (GroupState s : kStates) {
        const int n = stateCount[static_cast<size_t>(s)];
        if (n)
            os << " " << groupStateName(s) << ":" << n;
    }
    os << " wst " << wstTable.inUse() << "/" << cfg.wpu.wstEntries
       << " slots " << sched.slotsUsed() << "/" << cfg.wpu.schedSlots
       << " ready " << sched.readyCount() << " queued "
       << sched.queued().size();
    return os.str();
}

std::string
Wpu::dumpState() const
{
    std::ostringstream os;
    os << "wpu" << wpuId << ": halted " << haltedThreads << "/"
       << numThreads << "\n";
    for (const SimdGroup *g : live) {
        os << "  group " << g->id << " warp " << g->warp << " pc "
           << g->pc << " state " << groupStateName(g->state) << " mask "
           << maskToString(g->mask, cfg.wpu.simdWidth) << " pend "
           << maskToString(g->pendingMem, cfg.wpu.simdWidth)
           << " frames " << g->frames.size() << " slot "
           << (g->hasSlot ? "y" : "n") << "\n";
    }
    return os.str();
}

} // namespace dws
