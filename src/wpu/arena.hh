/**
 * @file
 * Arena allocators for the per-WPU hot-path objects.
 *
 * Dynamic warp subdivision churns through SimdGroups and ReconvBarriers:
 * every split, revive, slip boundary and kernel-barrier release creates
 * objects that die shortly after. With the general-purpose heap each of
 * those is a malloc/free pair (plus a shared_ptr control block for
 * barriers) on the per-cycle path. The two pools here recycle that
 * storage instead:
 *
 *  - GroupArena owns every SimdGroup a WPU ever creates, in a deque so
 *    addresses stay stable, and hands dead groups back out with their
 *    frames/pending vector capacity intact.
 *
 *  - BarrierPool is a freelist behind a std::allocate_shared allocator,
 *    so a ReconvBarrier and its control block are one recycled block.
 *    PoolAlloc holds the freelist by shared_ptr: each control block
 *    keeps a copy of its allocator, so the freelist outlives the WPU if
 *    a test (or parked split) still holds a BarrierRef.
 */

#ifndef DWS_WPU_ARENA_HH
#define DWS_WPU_ARENA_HH

#include <deque>
#include <memory>
#include <new>
#include <vector>

#include "wpu/simd_group.hh"

namespace dws {

/** Recycling pool of SimdGroups with stable addresses. */
class GroupArena
{
  public:
    /** @return a group with every field default-initialized. */
    SimdGroup *
    acquire()
    {
        if (!free_.empty()) {
            SimdGroup *g = free_.back();
            free_.pop_back();
            return g;
        }
        storage_.emplace_back();
        return &storage_.back();
    }

    /** Return a group to the pool. The pointer must come from acquire(). */
    void
    release(SimdGroup *g)
    {
        g->recycle();
        free_.push_back(g);
    }

    /** @return total groups ever materialized (tests, diagnostics). */
    std::size_t allocated() const { return storage_.size(); }

    /** @return groups currently sitting in the free list. */
    std::size_t freeCount() const { return free_.size(); }

  private:
    std::deque<SimdGroup> storage_;
    std::vector<SimdGroup *> free_;
};

/**
 * Shared freelist state behind PoolAlloc. All blocks are one size (the
 * std::allocate_shared control-block-plus-payload size, fixed at the
 * first allocation); odd-sized requests bypass the freelist.
 */
struct PoolState
{
    std::size_t blockSize = 0;
    std::vector<void *> free_;
    std::uint64_t served = 0;
    std::uint64_t reused = 0;

    ~PoolState()
    {
        for (void *p : free_)
            ::operator delete(p);
    }

    PoolState() = default;
    PoolState(const PoolState &) = delete;
    PoolState &operator=(const PoolState &) = delete;
};

/**
 * Minimal allocator over a shared PoolState, for std::allocate_shared.
 * Copyable across rebinds; all copies share one freelist.
 */
template <class T>
struct PoolAlloc
{
    using value_type = T;

    std::shared_ptr<PoolState> st;

    explicit PoolAlloc(std::shared_ptr<PoolState> s) : st(std::move(s)) {}

    template <class U>
    PoolAlloc(const PoolAlloc<U> &o) : st(o.st)
    {
    }

    T *
    allocate(std::size_t n)
    {
        const std::size_t bytes = n * sizeof(T);
        if (st->blockSize == 0)
            st->blockSize = bytes;
        if (bytes == st->blockSize) {
            st->served++;
            if (!st->free_.empty()) {
                void *p = st->free_.back();
                st->free_.pop_back();
                st->reused++;
                return static_cast<T *>(p);
            }
        }
        return static_cast<T *>(::operator new(bytes));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        const std::size_t bytes = n * sizeof(T);
        if (bytes == st->blockSize)
            st->free_.push_back(p);
        else
            ::operator delete(p);
    }

    template <class U>
    bool
    operator==(const PoolAlloc<U> &o) const
    {
        return st == o.st;
    }
};

} // namespace dws

#endif // DWS_WPU_ARENA_HH
