/**
 * @file
 * Warp-split table accounting (paper Sections 4.4, 5.6, 6.7).
 *
 * The WST is the hardware structure that holds one entry per warp-split.
 * An undivided warp does not consume an entry (it lives in the
 * conventional warp scheduler); once a warp is subdivided, every one of
 * its splits occupies an entry. Subdivision is denied while the table
 * is full. The SimdGroup objects themselves are owned by the Wpu; this
 * class tracks per-warp group counts and enforces the capacity.
 */

#ifndef DWS_WPU_WST_HH
#define DWS_WPU_WST_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "trace/trace.hh"

namespace dws {

/** Capacity accounting for the warp-split table. */
class WarpSplitTable
{
  public:
    /**
     * @param entries  maximum warp-splits (table capacity)
     * @param numWarps warps on the WPU
     */
    WarpSplitTable(int entries, int numWarps)
        : capacity(entries), groupsPerWarp(numWarps, 0),
          parkedPerWarp(numWarps, 0)
    {}

    /**
     * @return true if warp w may be subdivided once more: an undivided
     *         warp enters the table with both of its new splits, an
     *         already-divided warp adds one entry.
     */
    bool canSubdivide(WarpId w) const;

    /** Record a new group of warp w. */
    void addGroup(WarpId w);

    /** Record the removal (merge/death) of a group of warp w. */
    void removeGroup(WarpId w);

    /**
     * A split arrived at a re-convergence barrier and is waiting for
     * its siblings: its WST entry stays occupied until the merge
     * completes (the split "stalls waiting to be re-united",
     * Section 4.4).
     */
    void addParked(WarpId w);

    /** Release n parked entries of warp w (barrier completed). */
    void removeParked(WarpId w, int n);

    /** Release every parked entry of warp w (kernel barrier). */
    void clearParked(WarpId w);

    /** @return WST entries currently occupied. */
    int inUse() const;

    /** @return number of live (running) groups of warp w. */
    int groups(WarpId w) const
    {
        return groupsPerWarp[static_cast<size_t>(w)];
    }

    /** @return parked (barrier-waiting) splits of warp w. */
    int parked(WarpId w) const
    {
        return parkedPerWarp[static_cast<size_t>(w)];
    }

    /** Peak WST occupancy observed. */
    std::uint64_t peakUse = 0;

    /** Attach the tracer for alloc/free/park records (nullptr = off). */
    void
    setTracer(Tracer *t, WpuId wpu)
    {
        trace_ = t;
        wpuId_ = wpu;
    }

  private:
    /** The fault injector skews the occupancy counts (src/fault/). */
    friend class FaultInjector;

    void notePeak();

    Tracer *trace_ = nullptr;
    WpuId wpuId_ = 0;

    int capacity;
    std::vector<int> groupsPerWarp;
    std::vector<int> parkedPerWarp;
};

} // namespace dws

#endif // DWS_WPU_WST_HH
