// DivergencePolicy is header-only; see policy.hh.
#include "wpu/policy.hh"
