/**
 * @file
 * Unit tests for the kernel IR: ALU semantics, the program builder,
 * and the CFG post-dominator analysis.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "isa/cfg.hh"
#include "isa/disasm.hh"
#include "isa/instr.hh"
#include "isa/program.hh"

namespace dws {
namespace {

TEST(EvalAlu, Arithmetic)
{
    EXPECT_EQ(evalAlu(Op::Add, 2, 3, 0), 5);
    EXPECT_EQ(evalAlu(Op::Sub, 2, 3, 0), -1);
    EXPECT_EQ(evalAlu(Op::Mul, -4, 3, 0), -12);
    EXPECT_EQ(evalAlu(Op::Div, 7, 2, 0), 3);
    EXPECT_EQ(evalAlu(Op::Div, -7, 2, 0), -3);
    EXPECT_EQ(evalAlu(Op::Rem, 7, 3, 0), 1);
}

TEST(EvalAlu, DivisionByZeroYieldsZero)
{
    EXPECT_EQ(evalAlu(Op::Div, 42, 0, 0), 0);
    EXPECT_EQ(evalAlu(Op::Rem, 42, 0, 0), 0);
}

TEST(EvalAlu, Comparisons)
{
    EXPECT_EQ(evalAlu(Op::Slt, 1, 2, 0), 1);
    EXPECT_EQ(evalAlu(Op::Slt, 2, 2, 0), 0);
    EXPECT_EQ(evalAlu(Op::Sle, 2, 2, 0), 1);
    EXPECT_EQ(evalAlu(Op::Seq, 3, 3, 0), 1);
    EXPECT_EQ(evalAlu(Op::Sne, 3, 3, 0), 0);
    EXPECT_EQ(evalAlu(Op::Min, 3, -1, 0), -1);
    EXPECT_EQ(evalAlu(Op::Max, 3, -1, 0), 3);
}

TEST(EvalAlu, ImmediatesAndShifts)
{
    EXPECT_EQ(evalAlu(Op::Addi, 10, 0, -3), 7);
    EXPECT_EQ(evalAlu(Op::Muli, 10, 0, 4), 40);
    EXPECT_EQ(evalAlu(Op::Shli, 1, 0, 5), 32);
    EXPECT_EQ(evalAlu(Op::Shri, -8, 0, 1), -4); // arithmetic shift
    EXPECT_EQ(evalAlu(Op::Slti, 3, 0, 4), 1);
    EXPECT_EQ(evalAlu(Op::Movi, 0, 0, 99), 99);
    EXPECT_EQ(evalAlu(Op::Andi, 0b1101, 0, 0b0110), 0b0100);
}

TEST(EvalAlu, OverflowWraps)
{
    const std::int64_t big = std::numeric_limits<std::int64_t>::max();
    EXPECT_EQ(evalAlu(Op::Add, big, 1, 0),
              std::numeric_limits<std::int64_t>::min());
}

TEST(Builder, ForwardAndBackwardLabels)
{
    KernelBuilder b;
    auto back = b.newLabel();
    auto fwd = b.newLabel();
    b.bind(back);
    b.addi(2, 2, 1);
    b.br(2, fwd);     // forward reference
    b.jmp(back);      // backward reference
    b.bind(fwd);
    b.halt();
    Program p = b.build("labels");
    ASSERT_EQ(p.size(), 4);
    EXPECT_EQ(p.at(1).op, Op::Br);
    EXPECT_EQ(p.at(1).target, 3);
    EXPECT_EQ(p.at(2).op, Op::Jmp);
    EXPECT_EQ(p.at(2).target, 0);
}

TEST(Builder, EmitsExpectedEncodings)
{
    KernelBuilder b;
    b.ld(5, 6, 24);
    b.st(7, 8, -16);
    b.movi(9, 1234);
    b.halt();
    Program p = b.build("enc");
    EXPECT_EQ(p.at(0).op, Op::Ld);
    EXPECT_EQ(p.at(0).rd, 5);
    EXPECT_EQ(p.at(0).ra, 6);
    EXPECT_EQ(p.at(0).imm, 24);
    EXPECT_EQ(p.at(1).op, Op::St);
    EXPECT_EQ(p.at(1).ra, 7);
    EXPECT_EQ(p.at(1).rb, 8);
    EXPECT_EQ(p.at(1).imm, -16);
    EXPECT_EQ(p.at(2).imm, 1234);
}

/** Build the paper's Figure 3 diamond: A; br -> C; B; jmp D; C:; D: */
Program
diamond()
{
    KernelBuilder b;
    auto labC = b.newLabel();
    auto labD = b.newLabel();
    b.addi(2, 2, 1);   // 0: A
    b.br(3, labC);     // 1: branch
    b.addi(2, 2, 10);  // 2: B (fall-through)
    b.jmp(labD);       // 3
    b.bind(labC);
    b.addi(2, 2, 20);  // 4: C (taken)
    b.bind(labD);
    b.addi(2, 2, 30);  // 5: D (post-dominator)
    b.halt();          // 6
    return b.build("diamond");
}

TEST(Cfg, DiamondPostDominator)
{
    Program p = diamond();
    const BranchInfo &bi = p.branchInfo(1);
    EXPECT_EQ(bi.ipdom, 5);
    // Block at the post-dominator: instrs 5 (addi) and 6 (halt).
    EXPECT_EQ(bi.postBlockLen, 2);
    EXPECT_TRUE(p.at(1).subdividable());
}

TEST(Cfg, BranchToExitHasNoPostDominator)
{
    KernelBuilder b;
    auto done = b.newLabel();
    b.br(2, done);   // 0
    b.addi(2, 2, 1); // 1
    b.bind(done);
    b.halt();        // 2
    Program p = b.build("toexit");
    // Both paths meet at the halt: ipdom is instruction 2.
    EXPECT_EQ(p.branchInfo(0).ipdom, 2);
}

TEST(Cfg, LoopBackEdge)
{
    KernelBuilder b;
    auto loop = b.newLabel();
    b.bind(loop);
    b.addi(2, 2, -1); // 0
    b.slt(3, 30, 2);  // 1: r3 = 0 < r2
    b.br(3, loop);    // 2: loop while positive
    b.halt();         // 3
    Program p = b.build("loop");
    // The loop branch re-converges at the halt.
    EXPECT_EQ(p.branchInfo(2).ipdom, 3);
}

TEST(Cfg, NestedDiamonds)
{
    // outer: br -> E ; inner diamond inside the fall-through path.
    KernelBuilder b;
    auto labE = b.newLabel();
    auto labInC = b.newLabel();
    auto labInD = b.newLabel();
    b.br(2, labE);      // 0: outer branch
    b.br(3, labInC);    // 1: inner branch
    b.addi(4, 4, 1);    // 2
    b.jmp(labInD);      // 3
    b.bind(labInC);
    b.addi(4, 4, 2);    // 4
    b.bind(labInD);
    b.addi(4, 4, 3);    // 5: inner post-dominator
    b.bind(labE);
    b.addi(4, 4, 4);    // 6: outer post-dominator
    b.halt();           // 7
    Program p = b.build("nested");
    EXPECT_EQ(p.branchInfo(0).ipdom, 6);
    EXPECT_EQ(p.branchInfo(1).ipdom, 5);
}

TEST(Cfg, SubdividableHeuristicRespectsThreshold)
{
    // Post-dominator followed by a long straight-line block.
    KernelBuilder b;
    auto labC = b.newLabel();
    auto labD = b.newLabel();
    b.br(2, labC);   // 0
    b.addi(3, 3, 1); // 1
    b.jmp(labD);     // 2
    b.bind(labC);
    b.addi(3, 3, 2); // 3
    b.bind(labD);
    for (int i = 0; i < 60; i++)
        b.addi(4, 4, 1);
    b.halt();
    Program p = b.build("longpost", 50);
    EXPECT_FALSE(p.at(0).subdividable());
    EXPECT_GT(p.branchInfo(0).postBlockLen, 50);

    // Same program under a looser threshold subdivides.
    KernelBuilder b2;
    auto c2 = b2.newLabel();
    auto d2 = b2.newLabel();
    b2.br(2, c2);
    b2.addi(3, 3, 1);
    b2.jmp(d2);
    b2.bind(c2);
    b2.addi(3, 3, 2);
    b2.bind(d2);
    for (int i = 0; i < 60; i++)
        b2.addi(4, 4, 1);
    b2.halt();
    Program p2 = b2.build("longpost2", 100);
    EXPECT_TRUE(p2.at(0).subdividable());
}

TEST(Cfg, BasicBlockLengthStopsAtLeaders)
{
    Program p = diamond();
    // Block starting at 2 (B): instr 2 then jmp at 3 -> length 2.
    EXPECT_EQ(CfgAnalysis::basicBlockLength(p.instructions(), 2), 2);
    // Block starting at 5: addi + halt.
    EXPECT_EQ(CfgAnalysis::basicBlockLength(p.instructions(), 5), 2);
}

TEST(Disasm, ProducesReadableListing)
{
    Program p = diamond();
    const std::string text = disasm(p);
    EXPECT_NE(text.find("br r3"), std::string::npos);
    EXPECT_NE(text.find("!ipdom=L5"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
}

TEST(Program, RejectsOutOfRangeTargets)
{
    std::vector<Instr> code;
    Instr bad;
    bad.op = Op::Jmp;
    bad.target = 100;
    code.push_back(bad);
    EXPECT_EXIT(Program(code, "bad"), ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace dws
