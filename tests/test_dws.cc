/**
 * @file
 * Dynamic-warp-subdivision tests: every divergence policy must produce
 * the same architectural results as the conventional baseline, and the
 * mechanisms (branch splits, memory splits, PC merges, WST limits)
 * must actually engage.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace dws {
namespace {

/** All policies under test. */
std::vector<PolicyConfig>
allPolicies()
{
    return {
        PolicyConfig::conv(),
        PolicyConfig::branchOnlyStack(),
        PolicyConfig::branchOnly(),
        PolicyConfig::memOnlyBranchLimited(SplitScheme::Aggressive),
        PolicyConfig::memOnlyBranchLimited(SplitScheme::Lazy),
        PolicyConfig::memOnlyBranchLimited(SplitScheme::Revive),
        PolicyConfig::reviveMemOnly(),
        PolicyConfig::dws(SplitScheme::Aggressive),
        PolicyConfig::dws(SplitScheme::Lazy),
        PolicyConfig::reviveSplit(),
        PolicyConfig::adaptiveSlip(),
        PolicyConfig::slipBranchBypassCfg(),
    };
}

/**
 * A divergence-rich program: each thread walks a pseudo-random chain
 * through a table (memory divergence) and takes data-dependent
 * branches (branch divergence), accumulating a checksum.
 */
Program
chainKernel(int tableWords, int steps)
{
    KernelBuilder b;
    auto loop = b.newLabel();
    auto done = b.newLabel();
    auto odd = b.newLabel();
    auto join = b.newLabel();
    // r2 = index (start at tid*37 % table), r3 = step, r4 = acc
    b.muli(2, 0, 37);
    b.movi(5, tableWords);
    b.rem(2, 2, 5);
    b.movi(3, 0);
    b.movi(4, 0);
    b.bind(loop);
    b.slti(6, 3, 0x7fffffff); // keep r6 live
    b.movi(6, steps);
    b.sle(6, 6, 3);
    b.br(6, done);
    // load next index
    b.muli(7, 2, kWordBytes);
    b.ld(8, 7, 0);            // value at table[idx]
    b.add(4, 4, 8);           // acc += value
    // branch on value parity
    b.andi(9, 8, 1);
    b.br(9, odd);
    b.addi(4, 4, 5);          // even: small bonus
    b.jmp(join);
    b.bind(odd);
    b.muli(4, 4, 3);          // odd: multiply
    b.bind(join);
    b.movi(5, tableWords);
    b.rem(2, 8, 5);           // idx = value % table
    b.addi(3, 3, 1);
    b.jmp(loop);
    b.bind(done);
    b.muli(10, 0, kWordBytes);
    b.st(10, 4, tableWords * kWordBytes);
    b.halt();
    return b.build("chain");
}

constexpr int kTableWords = 4096;
constexpr int kSteps = 40;

TestKernel::InitFn
chainInit()
{
    return [](Memory &m) {
        Rng rng(99);
        for (int i = 0; i < kTableWords; i++)
            m.writeWord(static_cast<std::uint64_t>(i),
                        rng.nextRange(0, kTableWords * 4));
    };
}

/** Host-side golden for chainKernel. */
std::int64_t
chainExpect(int tid)
{
    Rng rng(99);
    std::vector<std::int64_t> table(kTableWords);
    for (auto &v : table)
        v = rng.nextRange(0, kTableWords * 4);
    std::int64_t idx = (std::int64_t(tid) * 37) % kTableWords;
    // Accumulate in unsigned so overflow wraps exactly like evalAlu's
    // Add/Mul (two's-complement), instead of being UB host-side.
    std::uint64_t acc = 0;
    for (int s = 0; s < kSteps; s++) {
        const std::int64_t v = table[static_cast<size_t>(idx)];
        acc += static_cast<std::uint64_t>(v);
        if (v & 1)
            acc *= 3;
        else
            acc += 5;
        idx = v % kTableWords;
    }
    return static_cast<std::int64_t>(acc);
}

class AllPolicies : public ::testing::TestWithParam<PolicyConfig> {};

TEST_P(AllPolicies, ChainKernelMatchesGolden)
{
    SystemConfig cfg = testConfig(8, 2, 2);
    cfg.policy = GetParam();
    // Small D-cache to force misses and memory divergence.
    cfg.wpu.dcache.sizeBytes = 2 * 1024;
    cfg.wpu.dcache.assoc = 2;
    TestKernel k(chainKernel(kTableWords, kSteps),
                 (kTableWords + 256) * kWordBytes, chainInit());
    System sys(cfg, k);
    sys.run();
    for (int t = 0; t < cfg.totalThreads(); t++) {
        EXPECT_EQ(sys.memory().readWord(
                          static_cast<std::uint64_t>(kTableWords + t)),
                  chainExpect(t))
                << "thread " << t << " under "
                << cfg.policy.name();
    }
}

INSTANTIATE_TEST_SUITE_P(
        Policies, AllPolicies, ::testing::ValuesIn(allPolicies()),
        [](const ::testing::TestParamInfo<PolicyConfig> &info) {
            std::string n = info.param.name();
            for (auto &c : n)
                if (c == '.' || c == '-')
                    c = '_';
            return n;
        });

TEST(DwsMechanism, BranchSplitsOccurWithBranchDws)
{
    SystemConfig cfg = testConfig(8, 2, 1);
    cfg.policy = PolicyConfig::branchOnly();
    cfg.wpu.dcache.sizeBytes = 2 * 1024;
    cfg.wpu.dcache.assoc = 2;
    TestKernel k(chainKernel(kTableWords, kSteps),
                 (kTableWords + 256) * kWordBytes, chainInit());
    System sys(cfg, k);
    RunStats s = sys.run();
    EXPECT_GT(s.wpus[0].branchSplits, 0u);
    EXPECT_EQ(s.wpus[0].memSplits, 0u);
}

TEST(DwsMechanism, MemSplitsOccurWithMemDws)
{
    SystemConfig cfg = testConfig(8, 2, 1);
    cfg.policy = PolicyConfig::reviveMemOnly();
    cfg.wpu.dcache.sizeBytes = 2 * 1024;
    cfg.wpu.dcache.assoc = 2;
    TestKernel k(chainKernel(kTableWords, kSteps),
                 (kTableWords + 256) * kWordBytes, chainInit());
    System sys(cfg, k);
    RunStats s = sys.run();
    EXPECT_GT(s.wpus[0].memSplits, 0u);
    // Note: under BranchBypass, existing memory-divergence splits may
    // legitimately subdivide further at divergent branches (paper
    // Section 5.3.2), so branchSplits can be non-zero here.
}

TEST(DwsMechanism, BranchLimitedSplitsNeverPassBranches)
{
    SystemConfig cfg = testConfig(8, 2, 1);
    cfg.policy = PolicyConfig::memOnlyBranchLimited(SplitScheme::Revive);
    cfg.wpu.dcache.sizeBytes = 2 * 1024;
    cfg.wpu.dcache.assoc = 2;
    TestKernel k(chainKernel(kTableWords, kSteps),
                 (kTableWords + 256) * kWordBytes, chainInit());
    System sys(cfg, k);
    RunStats s = sys.run();
    EXPECT_EQ(s.wpus[0].branchSplits, 0u);
}

TEST(DwsMechanism, AggressiveSplitsAtLeastAsOftenAsLazy)
{
    auto runWith = [](SplitScheme scheme) {
        SystemConfig cfg = testConfig(8, 2, 1);
        cfg.policy = PolicyConfig::dws(scheme);
        cfg.wpu.dcache.sizeBytes = 2 * 1024;
        cfg.wpu.dcache.assoc = 2;
        TestKernel k(chainKernel(kTableWords, kSteps),
                     (kTableWords + 256) * kWordBytes, chainInit());
        System sys(cfg, k);
        return sys.run().wpus[0].memSplits;
    };
    EXPECT_GE(runWith(SplitScheme::Aggressive),
              runWith(SplitScheme::Lazy));
}

TEST(DwsMechanism, PcMergesOccur)
{
    SystemConfig cfg = testConfig(8, 2, 1);
    cfg.policy = PolicyConfig::reviveSplit();
    cfg.wpu.dcache.sizeBytes = 2 * 1024;
    cfg.wpu.dcache.assoc = 2;
    TestKernel k(chainKernel(kTableWords, kSteps),
                 (kTableWords + 256) * kWordBytes, chainInit());
    System sys(cfg, k);
    RunStats s = sys.run();
    EXPECT_GT(s.wpus[0].pcMerges + s.wpus[0].stackMerges, 0u);
}

TEST(DwsMechanism, WstCapacityZeroDisablesSplits)
{
    SystemConfig cfg = testConfig(8, 2, 1);
    cfg.policy = PolicyConfig::reviveSplit();
    cfg.wpu.wstEntries = 0;
    cfg.wpu.dcache.sizeBytes = 2 * 1024;
    cfg.wpu.dcache.assoc = 2;
    TestKernel k(chainKernel(kTableWords, kSteps),
                 (kTableWords + 256) * kWordBytes, chainInit());
    System sys(cfg, k);
    RunStats s = sys.run();
    EXPECT_EQ(s.wpus[0].memSplits, 0u);
    EXPECT_EQ(s.wpus[0].branchSplits, 0u);
    // Correctness must still hold.
    for (int t = 0; t < cfg.totalThreads(); t++)
        EXPECT_EQ(sys.memory().readWord(
                          static_cast<std::uint64_t>(kTableWords + t)),
                  chainExpect(t));
}

TEST(DwsMechanism, WstPeakBoundedByCapacity)
{
    SystemConfig cfg = testConfig(8, 4, 1);
    cfg.policy = PolicyConfig::dws(SplitScheme::Aggressive);
    cfg.wpu.wstEntries = 6;
    cfg.wpu.dcache.sizeBytes = 2 * 1024;
    cfg.wpu.dcache.assoc = 2;
    TestKernel k(chainKernel(kTableWords, kSteps),
                 (kTableWords + 256) * kWordBytes, chainInit());
    System sys(cfg, k);
    sys.run();
    EXPECT_LE(sys.wpu(0).wst().peakUse, 6u);
}

TEST(DwsMechanism, SlipTakesSlips)
{
    SystemConfig cfg = testConfig(8, 2, 1);
    cfg.policy = PolicyConfig::adaptiveSlip();
    // Moderate miss rate so divergent accesses with few misses occur
    // (slip only engages within its divergence threshold).
    cfg.wpu.dcache.sizeBytes = 8 * 1024;
    cfg.wpu.dcache.assoc = 4;
    TestKernel k(chainKernel(kTableWords, kSteps),
                 (kTableWords + 256) * kWordBytes, chainInit());
    System sys(cfg, k);
    RunStats s = sys.run();
    EXPECT_GT(s.wpus[0].slipsTaken, 0u);
}

TEST(DwsMechanism, BarrierReconvergesSplits)
{
    // Memory-divergent phase, then a kernel barrier, then a uniform
    // store: splits must fully re-converge at the barrier.
    KernelBuilder b;
    b.muli(2, 0, 61);
    b.movi(3, kTableWords);
    b.rem(2, 2, 3);
    b.muli(2, 2, kWordBytes);
    b.ld(4, 2, 0);
    b.bar();
    b.muli(5, 0, kWordBytes);
    b.st(5, 4, kTableWords * kWordBytes);
    b.halt();
    SystemConfig cfg = testConfig(8, 2, 2);
    cfg.policy = PolicyConfig::reviveSplit();
    cfg.wpu.dcache.sizeBytes = 2 * 1024;
    cfg.wpu.dcache.assoc = 2;
    TestKernel k(b.build("barsplit"),
                 (kTableWords + 256) * kWordBytes, chainInit());
    System sys(cfg, k);
    sys.run();
    Rng rng(99);
    std::vector<std::int64_t> table(kTableWords);
    for (auto &v : table)
        v = rng.nextRange(0, kTableWords * 4);
    for (int t = 0; t < cfg.totalThreads(); t++) {
        const std::int64_t idx = (std::int64_t(t) * 61) % kTableWords;
        EXPECT_EQ(sys.memory().readWord(
                          static_cast<std::uint64_t>(kTableWords + t)),
                  table[static_cast<size_t>(idx)]);
    }
}

} // namespace
} // namespace dws

namespace dws {
namespace {

TEST(DwsMechanism, LaneConservationInvariantHolds)
{
    // Run the divergence-rich kernel under the most split-happy policy
    // with the periodic lane-conservation checker enabled: every lane
    // must always be accounted for by exactly the live groups, slip
    // entries, barrier arrivals and halted sets (the checker panics on
    // violation).
    setenv("DWS_CHECK_LANES", "1", 1);
    for (const auto &pol : {PolicyConfig::dws(SplitScheme::Aggressive),
                            PolicyConfig::slipBranchBypassCfg()}) {
        SystemConfig cfg = testConfig(8, 2, 2);
        cfg.policy = pol;
        cfg.wpu.dcache.sizeBytes = 2 * 1024;
        cfg.wpu.dcache.assoc = 2;
        TestKernel k(chainKernel(kTableWords, kSteps),
                     (kTableWords + 256) * kWordBytes, chainInit());
        System sys(cfg, k);
        sys.run();
        EXPECT_TRUE(sys.finished());
    }
    unsetenv("DWS_CHECK_LANES");
}

} // namespace
} // namespace dws
