/**
 * @file
 * End-to-end benchmark-kernel tests: every kernel must produce output
 * bit-identical to its host-side golden reference, on the paper's
 * Table 3 configuration, under the conventional policy and under the
 * headline DWS and slip policies.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "kernels/kernel.hh"
#include "sim/logging.hh"

namespace dws {
namespace {

struct KernelPolicyCase
{
    std::string kernel;
    PolicyConfig policy;
};

std::vector<KernelPolicyCase>
cases()
{
    std::vector<KernelPolicyCase> out;
    const std::vector<PolicyConfig> policies = {
        PolicyConfig::conv(),
        PolicyConfig::reviveSplit(),
        PolicyConfig::slipBranchBypassCfg(),
    };
    for (const auto &k : kernelNames())
        for (const auto &p : policies)
            out.push_back({k, p});
    return out;
}

class KernelRuns : public ::testing::TestWithParam<KernelPolicyCase> {};

TEST_P(KernelRuns, ValidatesAgainstGolden)
{
    SystemConfig cfg = SystemConfig::table3(GetParam().policy);
    const RunResult r =
            runKernel(GetParam().kernel, cfg, KernelScale::Tiny);
    EXPECT_TRUE(r.valid) << r.kernel << " under " << r.policy;
    EXPECT_GT(r.stats.cycles, 0u);
    EXPECT_GT(r.stats.totalScalarInstrs(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
        AllKernels, KernelRuns, ::testing::ValuesIn(cases()),
        [](const ::testing::TestParamInfo<KernelPolicyCase> &info) {
            std::string n =
                    info.param.kernel + "_" + info.param.policy.name();
            for (auto &c : n)
                if (!isalnum(static_cast<unsigned char>(c)))
                    c = '_';
            return n;
        });

TEST(KernelCharacteristics, FilterHasAlmostNoDivergentBranches)
{
    // Table 1 reports 0% for Filter; the only divergence in ours is
    // the loop-exit boundary of uneven blocked ranges.
    SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    const RunResult r = runKernel("Filter", cfg, KernelScale::Tiny);
    std::uint64_t div = 0, total = 0;
    for (const auto &w : r.stats.wpus) {
        div += w.divergentBranches;
        total += w.branches;
    }
    ASSERT_GT(total, 0u);
    EXPECT_LT(double(div) / double(total), 0.02);
}

TEST(KernelCharacteristics, ShortIsBranchDivergent)
{
    // Short implements its neighbor maxima with data-dependent branches
    // (Table 1: 22% divergent). Merge's selection is branch-free
    // (conditional moves, like compiled code), so only Short is checked
    // for heavy branch divergence.
    SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    const RunResult r = runKernel("Short", cfg, KernelScale::Tiny);
    std::uint64_t div = 0, total = 0;
    for (const auto &w : r.stats.wpus) {
        div += w.divergentBranches;
        total += w.branches;
    }
    ASSERT_GT(total, 0u);
    EXPECT_GT(double(div) / double(total), 0.02);
}

TEST(KernelCharacteristics, AllKernelsShowMemoryDivergence)
{
    SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    // Tiny inputs vs. the Table 3 cache would let some working sets fit
    // in the L1; shrink it to preserve paper-scale cache pressure.
    cfg.wpu.dcache.sizeBytes = 8 * 1024;
    for (const auto &name : kernelNames()) {
        const RunResult r = runKernel(name, cfg, KernelScale::Tiny);
        std::uint64_t div = 0;
        for (const auto &w : r.stats.wpus)
            div += w.divergentAccesses;
        EXPECT_GT(div, 0u) << name;
    }
}

} // namespace
} // namespace dws
