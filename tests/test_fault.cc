/**
 * @file
 * Tests for the fault-injection framework and the recoverable failure
 * handling it validates: spec parsing, fingerprint round-trips, the
 * detection-latency campaign (every fault class caught, within bound,
 * deterministically), failure isolation in the sweep executor, the
 * completed-cell journal with resume, and the structured failure paths
 * (cycle limit, deadlock, watchdog cancellation, harmonicMean context).
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "fault/campaign.hh"
#include "fault/fault.hh"
#include "harness/sweep.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "test_util.hh"

namespace dws {
namespace {

// --- spec parsing -----------------------------------------------------

TEST(FaultSpec, ParseRoundTrip)
{
    const auto s = parseFaultSpec("mask-flip@5000:wpu=1:seed=7");
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->cls, FaultClass::MaskFlip);
    EXPECT_EQ(s->cycle, 5000u);
    EXPECT_EQ(s->wpu, 1);
    EXPECT_EQ(s->seed, 7u);
    EXPECT_EQ(s->toString(), "mask-flip@5000:wpu=1:seed=7");

    // Defaults: wpu 0, seed 1.
    const auto d = parseFaultSpec("mshr-drop-fill@123");
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->cls, FaultClass::MshrDropFill);
    EXPECT_EQ(d->wpu, 0);
    EXPECT_EQ(d->seed, 1u);

    // Every class name round-trips through parse + toString.
    for (FaultClass c : allFaultClasses()) {
        FaultSpec spec;
        spec.cls = c;
        spec.cycle = 42;
        const auto back = parseFaultSpec(spec.toString());
        ASSERT_TRUE(back.has_value()) << faultClassName(c);
        EXPECT_EQ(back->cls, c);
    }
}

TEST(FaultSpec, ParseRejectsMalformed)
{
    setQuiet(true);
    EXPECT_FALSE(parseFaultSpec("").has_value());
    EXPECT_FALSE(parseFaultSpec("mask-flip").has_value());
    EXPECT_FALSE(parseFaultSpec("mask-flip@").has_value());
    EXPECT_FALSE(parseFaultSpec("mask-flip@abc").has_value());
    EXPECT_FALSE(parseFaultSpec("no-such-class@100").has_value());
    EXPECT_FALSE(parseFaultSpec("mask-flip@100:bogus=1").has_value());
    setQuiet(false);
}

TEST(FaultSpec, ClassNamesRoundTrip)
{
    for (FaultClass c : allFaultClasses()) {
        const auto back = faultClassFromName(faultClassName(c));
        ASSERT_TRUE(back.has_value()) << faultClassName(c);
        EXPECT_EQ(*back, c);
    }
    EXPECT_FALSE(faultClassFromName("not-a-class").has_value());
}

// --- fingerprint round-trip (journal restore) -------------------------

TEST(Fingerprint, ParseRoundTripsRealRun)
{
    const SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    const RunStats ref = runKernel("SVM", cfg, KernelScale::Tiny).stats;
    const std::string fp = ref.fingerprint();

    RunStats parsed;
    ASSERT_TRUE(RunStats::parseFingerprint(fp, parsed));
    EXPECT_EQ(parsed.fingerprint(), fp);
    EXPECT_EQ(parsed.cycles, ref.cycles);
    EXPECT_EQ(parsed.totalScalarInstrs(), ref.totalScalarInstrs());
    EXPECT_DOUBLE_EQ(parsed.energyNj, ref.energyNj);
}

TEST(Fingerprint, ParseRejectsGarbage)
{
    RunStats out;
    EXPECT_FALSE(RunStats::parseFingerprint("", out));
    EXPECT_FALSE(RunStats::parseFingerprint("not a fingerprint", out));
    EXPECT_FALSE(RunStats::parseFingerprint("cycles12", out));
}

// --- detection-latency campaign ---------------------------------------

TEST(Campaign, EveryFaultClassIsDetectedWithinBound)
{
    setQuiet(true);
    CampaignOptions opt;
    opt.seeds = {1};
    const CampaignReport rep = runFaultCampaign(opt);
    setQuiet(false);

    ASSERT_EQ(rep.cells.size(),
              static_cast<std::size_t>(kNumFaultClasses));
    EXPECT_EQ(rep.missed, 0);
    for (const auto &c : rep.cells) {
        EXPECT_TRUE(c.fired) << c.spec;
        EXPECT_EQ(c.classification, "detected") << c.spec << ": "
                                                << c.message;
        EXPECT_LE(c.latency, opt.detectBound) << c.spec;
        EXPECT_TRUE(c.outcome == SimOutcome::InvariantViolation ||
                    c.outcome == SimOutcome::Deadlock)
                << c.spec << ": " << simOutcomeName(c.outcome);
        EXPECT_FALSE(c.faultDesc.empty()) << c.spec;
    }
    EXPECT_EQ(rep.detected, kNumFaultClasses);
    EXPECT_LE(rep.maxLatency, opt.detectBound);
}

TEST(Campaign, DeterministicAcrossRuns)
{
    setQuiet(true);
    CampaignOptions opt;
    opt.classes = {FaultClass::MaskFlip, FaultClass::MshrDropFill};
    opt.seeds = {1, 2};
    const CampaignReport a = runFaultCampaign(opt);
    const CampaignReport b = runFaultCampaign(opt);
    setQuiet(false);

    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (size_t i = 0; i < a.cells.size(); i++) {
        EXPECT_EQ(a.cells[i].spec, b.cells[i].spec);
        EXPECT_EQ(a.cells[i].firedAt, b.cells[i].firedAt);
        EXPECT_EQ(a.cells[i].faultDesc, b.cells[i].faultDesc);
        EXPECT_EQ(a.cells[i].outcome, b.cells[i].outcome);
        EXPECT_EQ(a.cells[i].abortCycle, b.cells[i].abortCycle);
        EXPECT_EQ(a.cells[i].classification, b.cells[i].classification);
    }

    std::ostringstream ja, jb;
    writeCampaignReport(a, ja);
    writeCampaignReport(b, jb);
    EXPECT_EQ(ja.str(), jb.str());
}

// --- recoverable failure paths ----------------------------------------

TEST(Abort, ExitCodesAreDistinct)
{
    EXPECT_EQ(exitCodeFor(SimOutcome::Ok), 0);
    EXPECT_EQ(exitCodeFor(SimOutcome::ValidationFailed), 2);
    EXPECT_EQ(exitCodeFor(SimOutcome::Deadlock), 3);
    EXPECT_EQ(exitCodeFor(SimOutcome::CycleLimit), 4);
    EXPECT_EQ(exitCodeFor(SimOutcome::InvariantViolation), 5);
    EXPECT_EQ(exitCodeFor(SimOutcome::Panic), 6);
    EXPECT_EQ(exitCodeFor(SimOutcome::Timeout), 7);
    for (SimOutcome o :
         {SimOutcome::Ok, SimOutcome::ValidationFailed,
          SimOutcome::Deadlock, SimOutcome::CycleLimit,
          SimOutcome::InvariantViolation, SimOutcome::Panic,
          SimOutcome::Timeout})
        EXPECT_EQ(simOutcomeFromName(simOutcomeName(o)), o);
}

TEST(Abort, MaxCyclesThrowsUnderRecoverableScope)
{
    std::vector<Instr> code{
        Instr{.op = Op::Addi, .rd = 2, .ra = 2, .imm = 1},
        Instr{.op = Op::Jmp, .target = 0}};
    SystemConfig cfg = testConfig(4, 1, 1);
    cfg.maxCycles = 5000;
    TestKernel k(Program(code, "spin"));
    try {
        ScopedRecoverableAborts recoverable;
        System sys(cfg, k);
        sys.run();
        FAIL() << "expected SimAbortError";
    } catch (const SimAbortError &e) {
        EXPECT_EQ(e.outcome, SimOutcome::CycleLimit);
        EXPECT_GE(e.cycle, cfg.maxCycles);
        // The diagnostics carry per-WPU state lines and the event
        // census so the failure is debuggable from the record alone.
        EXPECT_NE(e.diagnostics.find("wpu0:"), std::string::npos);
        EXPECT_NE(e.diagnostics.find("events pending"),
                  std::string::npos);
    }
}

TEST(Abort, WatchdogCancelRaisesTimeout)
{
    // The cooperative cancellation path: System::run polls its bound
    // SimControl and raises Timeout once cancel is set.
    SimControl ctl;
    ctl.cancel.store(true);
    setThreadSimControl(&ctl);
    const SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    try {
        ScopedRecoverableAborts recoverable;
        runKernel("Merge", cfg, KernelScale::Tiny);
        setThreadSimControl(nullptr);
        FAIL() << "expected SimAbortError";
    } catch (const SimAbortError &e) {
        setThreadSimControl(nullptr);
        EXPECT_EQ(e.outcome, SimOutcome::Timeout);
    }
}

TEST(Abort, HarmonicMeanNamesTheOffendingEntry)
{
    {
        ScopedRecoverableAborts recoverable;
        EXPECT_THROW(harmonicMean({1.0, -2.0}, "ctxToken"),
                     SimAbortError);
    }
    EXPECT_DEATH(harmonicMean({1.0, -2.0, 3.0}, "ctxToken"),
                 "entry 1 of 3, ctxToken");
}

// --- executor failure isolation ---------------------------------------

/** Poison spec verified to deadlock Merge/ReviveSplit without audits. */
const char *kPoison = "mask-flip@2000";

/**
 * @return the ReviveSplit Table 3 config with invariant audits
 *         explicitly off, so a planted mask-flip is detected as a
 *         deadlock in Release and Debug builds alike (Debug audits by
 *         default and would catch it as an invariant violation first).
 */
SystemConfig
poisonBaseConfig()
{
    SystemConfig cfg = SystemConfig::table3(PolicyConfig::reviveSplit());
    cfg.checkInvariants = 0;
    return cfg;
}

TEST(ExecutorFault, PoisonedCellFailsAloneAndSiblingsAreIdentical)
{
    const SystemConfig cfg = poisonBaseConfig();
    SystemConfig poisoned = cfg;
    poisoned.faultSpec = kPoison;

    SweepExecutor healthy(2);
    const auto ref = healthy.runBatch(
            {SweepJob{"Merge", cfg, KernelScale::Tiny, "A"},
             SweepJob{"SVM", cfg, KernelScale::Tiny, "A"},
             SweepJob{"Short", cfg, KernelScale::Tiny, "A"}});
    EXPECT_EQ(healthy.worstOutcome(), SimOutcome::Ok);

    SweepExecutor ex(2);
    const auto res = ex.runBatch(
            {SweepJob{"Merge", poisoned, KernelScale::Tiny, "A"},
             SweepJob{"SVM", cfg, KernelScale::Tiny, "A"},
             SweepJob{"Short", cfg, KernelScale::Tiny, "A"}});
    ASSERT_EQ(res.size(), 3u);

    // The poisoned cell fails with a structured outcome + diagnostics.
    EXPECT_FALSE(res[0].ok());
    EXPECT_EQ(res[0].outcome, SimOutcome::Deadlock);
    EXPECT_FALSE(res[0].error.empty());
    EXPECT_NE(res[0].diagnostics.find("wpu0:"), std::string::npos);
    EXPECT_NE(res[0].diagnostics.find("events pending"),
              std::string::npos);

    // The surviving cells are byte-identical to the healthy sweep.
    EXPECT_TRUE(res[1].ok());
    EXPECT_TRUE(res[2].ok());
    EXPECT_EQ(res[1].run.stats.fingerprint(),
              ref[1].run.stats.fingerprint());
    EXPECT_EQ(res[2].run.stats.fingerprint(),
              ref[2].run.stats.fingerprint());

    EXPECT_EQ(ex.worstOutcome(), SimOutcome::Deadlock);
    // Records carry the failure for the JSON results file.
    const auto recs = ex.records();
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0].outcome, "deadlock");
    EXPECT_EQ(recs[1].outcome, "ok");
}

TEST(ExecutorFault, CycleLimitInWorkerIsCaptured)
{
    SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    cfg.maxCycles = 1000; // Merge/Tiny needs far more
    SweepExecutor ex(1);
    const auto res = ex.runBatch(
            {SweepJob{"Merge", cfg, KernelScale::Tiny, "cap"}});
    ASSERT_EQ(res.size(), 1u);
    EXPECT_EQ(res[0].outcome, SimOutcome::CycleLimit);
    EXPECT_NE(res[0].error.find("1000"), std::string::npos);
    EXPECT_EQ(ex.worstOutcome(), SimOutcome::CycleLimit);
}

TEST(ExecutorFault, SweepHelpersRenderFailures)
{
    const SystemConfig cfg = poisonBaseConfig();

    SweepExecutor ex(2);
    const PolicyRun base = runAll("base", cfg, KernelScale::Tiny,
                                  {"Merge", "SVM"}, &ex);
    // Poison exactly one cell of the test run through the --inject-cell
    // path the benches use.
    setBenchFault(kPoison, "poisoned/Merge");
    const PolicyRun test = runAll("poisoned", cfg, KernelScale::Tiny,
                                  {"Merge", "SVM"}, &ex);
    setBenchFault("", "");

    EXPECT_TRUE(base.ok("Merge"));
    EXPECT_FALSE(test.ok("Merge"));
    ASSERT_TRUE(test.failures.count("Merge"));
    EXPECT_NE(test.failures.at("Merge").find("deadlock"),
              std::string::npos);

    // speedups() skips the failed cell instead of aborting; the h-mean
    // is computed over the survivors.
    setQuiet(true);
    const std::vector<double> sp = speedups(base, test);
    setQuiet(false);
    EXPECT_EQ(sp.size(), 1u);
    EXPECT_GT(hmeanSpeedup(base, test), 0.0);
}

TEST(ExecutorFault, WithBenchFaultTargetsOneCell)
{
    setBenchFault(kPoison, "A/Merge");
    EXPECT_EQ(withBenchFault(SystemConfig{}, "A", "Merge").faultSpec,
              kPoison);
    EXPECT_EQ(withBenchFault(SystemConfig{}, "B", "Merge").faultSpec,
              "");
    EXPECT_EQ(withBenchFault(SystemConfig{}, "A", "SVM").faultSpec, "");
    setBenchFault(kPoison, "Merge");
    EXPECT_EQ(withBenchFault(SystemConfig{}, "B", "Merge").faultSpec,
              kPoison);
    setBenchFault("", "");
    EXPECT_EQ(withBenchFault(SystemConfig{}, "A", "Merge").faultSpec,
              "");
}

// --- journal + resume -------------------------------------------------

TEST(Journal, ResumeRestoresCompletedCellsAndRerunsFailures)
{
    const std::string path =
            ::testing::TempDir() + "dws_fault_journal.jsonl";
    std::remove(path.c_str());

    const SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    SystemConfig poisoned = poisonBaseConfig();
    poisoned.faultSpec = kPoison;

    std::string svmFp;
    {
        SweepExecutor ex(2);
        ex.setJournal(path, false);
        const auto res = ex.runBatch(
                {SweepJob{"SVM", cfg, KernelScale::Tiny, "J"},
                 SweepJob{"Merge", poisoned, KernelScale::Tiny, "J"}});
        ASSERT_TRUE(res[0].ok());
        ASSERT_FALSE(res[1].ok());
        svmFp = res[0].run.stats.fingerprint();
    }

    {
        SweepExecutor ex(2);
        ex.setJournal(path, true);
        const auto res = ex.runBatch(
                {SweepJob{"SVM", cfg, KernelScale::Tiny, "J"},
                 SweepJob{"Merge", poisoned, KernelScale::Tiny, "J"}});
        // The ok cell is restored without re-simulating...
        ASSERT_TRUE(res[0].ok());
        EXPECT_TRUE(res[0].resumed);
        EXPECT_EQ(res[0].run.stats.fingerprint(), svmFp);
        // ...and the failed cell is re-run (and fails again, since the
        // simulator is deterministic).
        EXPECT_FALSE(res[1].resumed);
        EXPECT_EQ(res[1].outcome, SimOutcome::Deadlock);
    }
    std::remove(path.c_str());
}

// --- diagnostics helpers ----------------------------------------------

TEST(Diagnostics, EventCensusSummarizesPendingByKind)
{
    EventQueue q;
    q.schedule(SimEvent{.when = 412, .kind = EventKind::WakeGroup});
    q.schedule(SimEvent{.when = 500, .kind = EventKind::WakeGroup});
    q.schedule(SimEvent{.when = 450, .kind = EventKind::L1MshrRelease});
    const std::string line = q.censusLine();
    EXPECT_NE(line.find("events pending: 3"), std::string::npos);
    EXPECT_NE(line.find("WakeGroup:2"), std::string::npos);
    EXPECT_NE(line.find("L1MshrRelease:1"), std::string::npos);
    EXPECT_NE(line.find("next@412"), std::string::npos);
    EXPECT_EQ(q.kindCount(EventKind::WakeGroup), 2u);
    EXPECT_EQ(q.kindCount(EventKind::L2MshrRelease), 0u);
}

} // namespace
} // namespace dws
