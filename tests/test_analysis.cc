/**
 * @file
 * Tests for the static analysis subsystem: the IR verifier (including
 * the independent post-dominator referee), the static divergence
 * analysis, and the runtime invariant checker.
 */

#include <gtest/gtest.h>

#include "analysis/divergence.hh"
#include "analysis/invariants.hh"
#include "analysis/verifier.hh"
#include "harness/runner.hh"
#include "harness/system.hh"
#include "isa/builder.hh"
#include "isa/cfg.hh"
#include "kernels/kernel.hh"
#include "test_util.hh"

namespace dws {
namespace {

bool
anyMessageContains(const std::vector<Diagnostic> &diags,
                   const std::string &needle)
{
    for (const Diagnostic &d : diags)
        if (d.message.find(needle) != std::string::npos)
            return true;
    return false;
}

// --- verifier: structural checks ------------------------------------

TEST(Verifier, AcceptsMinimalProgram)
{
    std::vector<Instr> code{Instr{.op = Op::Movi, .rd = 2, .imm = 1},
                            Instr{.op = Op::Halt}};
    const auto diags = Verifier::verify(code);
    EXPECT_FALSE(hasErrors(diags));
    EXPECT_EQ(countSeverity(diags, Severity::Warning), 0);
}

TEST(Verifier, EmptyProgramIsError)
{
    EXPECT_TRUE(hasErrors(Verifier::verify(std::vector<Instr>{})));
}

TEST(Verifier, OutOfRangeBranchTargetIsError)
{
    std::vector<Instr> code{Instr{.op = Op::Br, .ra = 2, .target = 5},
                            Instr{.op = Op::Halt}};
    const auto diags = Verifier::verify(code);
    EXPECT_TRUE(hasErrors(diags));
    EXPECT_TRUE(anyMessageContains(diags, "target"));
}

TEST(Verifier, InvalidRegisterIsError)
{
    std::vector<Instr> code{
        Instr{.op = Op::Add, .rd = std::uint8_t(kNumRegs), .ra = 0,
              .rb = 1},
        Instr{.op = Op::Halt}};
    EXPECT_TRUE(hasErrors(Verifier::verify(code)));
}

TEST(Verifier, FallThroughPastEndIsError)
{
    std::vector<Instr> code{Instr{.op = Op::Addi, .rd = 2, .ra = 0,
                                  .imm = 1}};
    const auto diags = Verifier::verify(code);
    EXPECT_TRUE(hasErrors(diags));
    EXPECT_TRUE(anyMessageContains(diags, "falls through"));
}

TEST(Verifier, MissingHaltIsError)
{
    // movi; L: jmp L — runs forever, never reaches a Halt.
    std::vector<Instr> code{Instr{.op = Op::Movi, .rd = 2, .imm = 0},
                            Instr{.op = Op::Jmp, .target = 1}};
    const auto diags = Verifier::verify(code);
    EXPECT_TRUE(hasErrors(diags));
    EXPECT_TRUE(anyMessageContains(diags, "halt"));
}

TEST(Verifier, UseBeforeDefIsWarningOnly)
{
    std::vector<Instr> code{
        Instr{.op = Op::Add, .rd = 2, .ra = 3, .rb = 4},
        Instr{.op = Op::Halt}};
    const auto diags = Verifier::verify(code);
    EXPECT_FALSE(hasErrors(diags));
    EXPECT_GE(countSeverity(diags, Severity::Warning), 1);
    EXPECT_TRUE(anyMessageContains(diags, "before it is written"));
}

TEST(Verifier, TidAndThreadCountArePredefined)
{
    std::vector<Instr> code{
        Instr{.op = Op::Add, .rd = 2, .ra = 0, .rb = 1},
        Instr{.op = Op::Halt}};
    const auto diags = Verifier::verify(code);
    EXPECT_EQ(countSeverity(diags, Severity::Warning), 0);
}

TEST(Verifier, UnreachableCodeIsWarning)
{
    std::vector<Instr> code{Instr{.op = Op::Halt},
                            Instr{.op = Op::Nop},
                            Instr{.op = Op::Halt}};
    const auto diags = Verifier::verify(code);
    EXPECT_FALSE(hasErrors(diags));
    EXPECT_TRUE(anyMessageContains(diags, "unreachable"));
}

// --- verifier: builder front end ------------------------------------

TEST(Verifier, TryBuildReportsUnboundLabel)
{
    KernelBuilder b;
    auto l = b.newLabel();
    b.br(2, l); // never bound
    b.halt();
    std::vector<Diagnostic> diags;
    const auto prog = b.tryBuild("unbound", diags);
    EXPECT_FALSE(prog.has_value());
    EXPECT_TRUE(hasErrors(diags));
    EXPECT_TRUE(anyMessageContains(diags, "unbound label"));
}

TEST(Verifier, TryBuildRejectsFallThrough)
{
    KernelBuilder b;
    b.addi(2, 0, 1); // no halt: execution runs off the end
    std::vector<Diagnostic> diags;
    const auto prog = b.tryBuild("fallthrough", diags);
    EXPECT_FALSE(prog.has_value());
    EXPECT_TRUE(anyMessageContains(diags, "falls through"));
}

TEST(Verifier, TryBuildAcceptsGoodProgram)
{
    KernelBuilder b;
    auto done = b.newLabel();
    b.slti(2, 0, 4);
    b.br(2, done);
    b.addi(3, 0, 1);
    b.bind(done);
    b.halt();
    std::vector<Diagnostic> diags;
    const auto prog = b.tryBuild("good", diags);
    ASSERT_TRUE(prog.has_value());
    EXPECT_FALSE(hasErrors(diags));
}

TEST(Verifier, BuildExitsOnUnboundLabel)
{
    KernelBuilder b;
    auto l = b.newLabel();
    b.br(2, l);
    b.halt();
    EXPECT_EXIT(b.build("bad"), ::testing::ExitedWithCode(1),
                "unbound label");
}

TEST(Verifier, BuildExitsOnFallThrough)
{
    KernelBuilder b;
    b.addi(2, 0, 1);
    EXPECT_EXIT(b.build("bad"), ::testing::ExitedWithCode(1),
                "falls through");
}

// --- verifier: post-dominator referee -------------------------------

TEST(Verifier, IpdomDataflowMatchesChkOnDiamond)
{
    KernelBuilder b;
    auto labC = b.newLabel();
    auto labD = b.newLabel();
    b.addi(2, 2, 1);  // 0
    b.br(3, labC);    // 1
    b.addi(2, 2, 10); // 2
    b.jmp(labD);      // 3
    b.bind(labC);
    b.addi(2, 2, 20); // 4
    b.bind(labD);
    b.addi(2, 2, 30); // 5: post-dominator of the branch
    b.halt();         // 6
    Program p = b.build("diamond");

    const auto chk = CfgAnalysis::immediatePostDominators(p.instructions());
    const auto ref = Verifier::ipdomByDataflow(p.instructions());
    EXPECT_EQ(chk, ref);
    EXPECT_EQ(ref[1], 5);
}

TEST(Verifier, IpdomDataflowMatchesChkOnLoop)
{
    KernelBuilder b;
    auto loop = b.newLabel();
    b.movi(2, 0);     // 0
    b.bind(loop);
    b.addi(2, 2, 1);  // 1
    b.slti(3, 2, 10); // 2
    b.br(3, loop);    // 3
    b.halt();         // 4
    Program p = b.build("loop");

    const auto chk = CfgAnalysis::immediatePostDominators(p.instructions());
    const auto ref = Verifier::ipdomByDataflow(p.instructions());
    EXPECT_EQ(chk, ref);
    EXPECT_EQ(ref[3], 4);
}

TEST(Verifier, IpdomDataflowMatchesChkOnAllKernels)
{
    for (const auto &name : kernelNames()) {
        auto k = makeKernel(name, KernelParams{.scale = KernelScale::Tiny});
        ASSERT_NE(k, nullptr) << name;
        const Program p = k->buildProgram();
        EXPECT_EQ(CfgAnalysis::immediatePostDominators(p.instructions()),
                  Verifier::ipdomByDataflow(p.instructions()))
                << name;
    }
}

TEST(Verifier, AllBuiltinKernelsLintClean)
{
    for (const auto &name : kernelNames()) {
        auto k = makeKernel(name, KernelParams{.scale = KernelScale::Tiny});
        ASSERT_NE(k, nullptr) << name;
        const Program p = k->buildProgram();
        const auto diags = Verifier::verify(p);
        EXPECT_FALSE(hasErrors(diags))
                << name << ": " << toString(diags.front());
    }
}

// --- static divergence analysis -------------------------------------

TEST(Divergence, UniformLoopBranch)
{
    KernelBuilder b;
    auto loop = b.newLabel();
    b.movi(2, 0);    // 0: i = 0
    b.movi(4, 10);   // 1: bound
    b.bind(loop);
    b.addi(2, 2, 1); // 2
    b.slt(3, 2, 4);  // 3
    b.br(3, loop);   // 4: trip count identical in every thread
    b.halt();        // 5
    Program p = b.build("uniform-loop");

    const auto rep = DivergenceAnalysis::analyze(p.instructions());
    EXPECT_FALSE(rep.mayDiverge(4));
    EXPECT_EQ(rep.uniformBranches, 1);
    EXPECT_EQ(rep.divergentBranches, 0);
    // A uniform branch must not be marked subdividable by the CFG pass.
    EXPECT_FALSE(p.at(4).subdividable());
}

TEST(Divergence, ThreadCountDerivedBranchIsUniform)
{
    KernelBuilder b;
    auto end = b.newLabel();
    b.slti(2, 1, 100); // r1 = thread count: same in every thread
    b.br(2, end);
    b.nop();
    b.bind(end);
    b.halt();
    Program p = b.build("nthreads-branch");

    const auto rep = DivergenceAnalysis::analyze(p.instructions());
    EXPECT_FALSE(rep.mayDiverge(1));
}

TEST(Divergence, TidDerivedBranchDiverges)
{
    KernelBuilder b;
    auto end = b.newLabel();
    b.andi(2, 0, 1); // r0 = tid: differs per lane
    b.br(2, end);
    b.nop();
    b.bind(end);
    b.halt();
    Program p = b.build("tid-branch");

    const auto rep = DivergenceAnalysis::analyze(p.instructions());
    EXPECT_TRUE(rep.mayDiverge(1));
    EXPECT_EQ(rep.divergentBranches, 1);
    EXPECT_TRUE(p.at(1).subdividable());
}

TEST(Divergence, LoadedValueDiverges)
{
    KernelBuilder b;
    auto end = b.newLabel();
    b.movi(2, 64); // uniform address...
    b.ld(3, 2);    // ...but loads are always treated as divergent
    b.br(3, end);
    b.nop();
    b.bind(end);
    b.halt();
    Program p = b.build("load-branch");

    const auto rep = DivergenceAnalysis::analyze(p.instructions());
    EXPECT_TRUE(rep.mayDiverge(2));
}

TEST(Divergence, ControlDependenceTaintsMergedValue)
{
    // r3 is written only by movi (uniform operands), but one write sits
    // inside the influence region of a tid-dependent branch, so after
    // re-convergence r3 differs across lanes.
    KernelBuilder b;
    auto l = b.newLabel();
    auto m = b.newLabel();
    b.andi(2, 0, 1); // 0
    b.movi(3, 0);    // 1
    b.br(2, l);      // 2: divergent
    b.movi(3, 1);    // 3: control-dependent write
    b.bind(l);
    b.br(3, m);      // 4: must be classified divergent
    b.nop();         // 5
    b.bind(m);
    b.halt();        // 6
    Program p = b.build("ctrl-taint");

    const auto rep = DivergenceAnalysis::analyze(p.instructions());
    EXPECT_TRUE(rep.mayDiverge(2));
    EXPECT_TRUE(rep.mayDiverge(4));
}

TEST(Divergence, BuiltinKernelsHaveSaneCounts)
{
    for (const auto &name : kernelNames()) {
        auto k = makeKernel(name, KernelParams{.scale = KernelScale::Tiny});
        const Program p = k->buildProgram();
        const auto rep = DivergenceAnalysis::analyze(p.instructions());
        int branches = 0;
        for (Pc pc = 0; pc < p.size(); pc++)
            if (p.at(pc).op == Op::Br)
                branches++;
        EXPECT_EQ(rep.uniformBranches + rep.divergentBranches, branches)
                << name;
        // Every kernel loops over a tid-derived task range.
        EXPECT_GE(rep.divergentBranches, 1) << name;
    }
}

TEST(Divergence, RuntimePredictionsHoldOnUniformLoop)
{
    KernelBuilder b;
    auto loop = b.newLabel();
    b.movi(2, 0);
    b.movi(4, 10);
    b.bind(loop);
    b.addi(2, 2, 1);
    b.slt(3, 2, 4);
    b.br(3, loop);
    b.halt();
    TestKernel k(b.build("uniform-loop"));

    SystemConfig cfg = testConfig(4, 2, 1);
    System sys(cfg, k);
    const RunStats stats = sys.run();
    ASSERT_EQ(stats.wpus.size(), 1u);
    EXPECT_GT(stats.wpus[0].staticUniformBranchExecs, 0u);
    EXPECT_EQ(stats.wpus[0].staticDivergenceMispredicts, 0u);
}

TEST(Divergence, RuntimeCountsDivergentExecs)
{
    KernelBuilder b;
    auto end = b.newLabel();
    b.andi(2, 0, 1);
    b.br(2, end);
    b.addi(3, 0, 1);
    b.bind(end);
    b.halt();
    TestKernel k(b.build("tid-branch"));

    SystemConfig cfg = testConfig(4, 2, 1);
    System sys(cfg, k);
    const RunStats stats = sys.run();
    ASSERT_EQ(stats.wpus.size(), 1u);
    EXPECT_GT(stats.wpus[0].staticDivergentBranchExecs, 0u);
    EXPECT_EQ(stats.wpus[0].staticDivergenceMispredicts, 0u);
}

// --- runtime invariant checker --------------------------------------

Program
tinyProgram()
{
    KernelBuilder b;
    b.addi(2, 0, 1);
    b.halt();
    return b.build("tiny");
}

TEST(Invariants, CleanAfterLaunch)
{
    TestKernel k(tinyProgram());
    SystemConfig cfg = testConfig(4, 2, 1);
    System sys(cfg, k);
    const auto violations = InvariantChecker::auditWpu(sys.wpu(0), 0);
    EXPECT_TRUE(violations.empty())
            << toString(violations.front());
}

TEST(Invariants, CorruptedMaskTrips)
{
    TestKernel k(tinyProgram());
    SystemConfig cfg = testConfig(4, 2, 1);
    System sys(cfg, k);
    ASSERT_FALSE(sys.wpu(0).groups().empty());
    // Steal lane 0 from the root group behind the bookkeeping's back.
    sys.wpu(0).groups()[0]->mask ^= ThreadMask(1);
    const auto violations = InvariantChecker::auditWpu(sys.wpu(0), 0);
    EXPECT_FALSE(violations.empty());
}

TEST(Invariants, ReviveSplitKernelsPassEveryCycleAudit)
{
    for (const auto &name : kernelNames()) {
        SystemConfig cfg = testConfig(8, 2, 2);
        cfg.policy = PolicyConfig::reviveSplit();
        cfg.checkInvariants = 1; // audit every cycle; tick panics on
                                 // the first violation
        const RunResult r = runKernel(name, cfg, KernelScale::Tiny);
        EXPECT_TRUE(r.valid) << name;
    }
}

} // namespace
} // namespace dws
