/**
 * @file
 * Tests for the static analysis subsystem: the IR verifier (including
 * the independent post-dominator referee), the static divergence
 * analysis, and the runtime invariant checker.
 */

#include <gtest/gtest.h>

#include "analysis/divergence.hh"
#include "analysis/invariants.hh"
#include "analysis/oracle.hh"
#include "analysis/report.hh"
#include "analysis/verifier.hh"
#include "harness/runner.hh"
#include "harness/system.hh"
#include "isa/builder.hh"
#include "isa/cfg.hh"
#include "kernels/kernel.hh"
#include "test_util.hh"

namespace dws {
namespace {

bool
anyMessageContains(const std::vector<Diagnostic> &diags,
                   const std::string &needle)
{
    for (const Diagnostic &d : diags)
        if (d.message.find(needle) != std::string::npos)
            return true;
    return false;
}

// --- verifier: structural checks ------------------------------------

TEST(Verifier, AcceptsMinimalProgram)
{
    std::vector<Instr> code{Instr{.op = Op::Movi, .rd = 2, .imm = 1},
                            Instr{.op = Op::Halt}};
    const auto diags = Verifier::verify(code);
    EXPECT_FALSE(hasErrors(diags));
    EXPECT_EQ(countSeverity(diags, Severity::Warning), 0);
}

TEST(Verifier, EmptyProgramIsError)
{
    EXPECT_TRUE(hasErrors(Verifier::verify(std::vector<Instr>{})));
}

TEST(Verifier, OutOfRangeBranchTargetIsError)
{
    std::vector<Instr> code{Instr{.op = Op::Br, .ra = 2, .target = 5},
                            Instr{.op = Op::Halt}};
    const auto diags = Verifier::verify(code);
    EXPECT_TRUE(hasErrors(diags));
    EXPECT_TRUE(anyMessageContains(diags, "target"));
}

TEST(Verifier, InvalidRegisterIsError)
{
    std::vector<Instr> code{
        Instr{.op = Op::Add, .rd = std::uint8_t(kNumRegs), .ra = 0,
              .rb = 1},
        Instr{.op = Op::Halt}};
    EXPECT_TRUE(hasErrors(Verifier::verify(code)));
}

TEST(Verifier, FallThroughPastEndIsError)
{
    std::vector<Instr> code{Instr{.op = Op::Addi, .rd = 2, .ra = 0,
                                  .imm = 1}};
    const auto diags = Verifier::verify(code);
    EXPECT_TRUE(hasErrors(diags));
    EXPECT_TRUE(anyMessageContains(diags, "falls through"));
}

TEST(Verifier, MissingHaltIsError)
{
    // movi; L: jmp L — runs forever, never reaches a Halt.
    std::vector<Instr> code{Instr{.op = Op::Movi, .rd = 2, .imm = 0},
                            Instr{.op = Op::Jmp, .target = 1}};
    const auto diags = Verifier::verify(code);
    EXPECT_TRUE(hasErrors(diags));
    EXPECT_TRUE(anyMessageContains(diags, "halt"));
}

TEST(Verifier, UseBeforeDefIsWarningOnly)
{
    // r2 is written only on the fall-through path; the read at the
    // join may still observe the launch zero.
    std::vector<Instr> code{
        Instr{.op = Op::Br, .ra = 0, .target = 2},
        Instr{.op = Op::Movi, .rd = 2, .imm = 5},
        Instr{.op = Op::Add, .rd = 3, .ra = 2, .rb = 2},
        Instr{.op = Op::Halt}};
    const auto diags = Verifier::verify(code);
    EXPECT_FALSE(hasErrors(diags));
    EXPECT_GE(countSeverity(diags, Severity::Warning), 1);
    EXPECT_TRUE(anyMessageContains(diags, "before it is written"));
}

TEST(Verifier, TidAndThreadCountArePredefined)
{
    std::vector<Instr> code{
        Instr{.op = Op::Add, .rd = 2, .ra = 0, .rb = 1},
        Instr{.op = Op::Halt}};
    const auto diags = Verifier::verify(code);
    EXPECT_EQ(countSeverity(diags, Severity::Warning), 0);
}

TEST(Verifier, UnreachableCodeIsWarning)
{
    std::vector<Instr> code{Instr{.op = Op::Halt},
                            Instr{.op = Op::Nop},
                            Instr{.op = Op::Halt}};
    const auto diags = Verifier::verify(code);
    EXPECT_FALSE(hasErrors(diags));
    EXPECT_TRUE(anyMessageContains(diags, "unreachable"));
}

// --- verifier: builder front end ------------------------------------

TEST(Verifier, TryBuildReportsUnboundLabel)
{
    KernelBuilder b;
    auto l = b.newLabel();
    b.br(2, l); // never bound
    b.halt();
    std::vector<Diagnostic> diags;
    const auto prog = b.tryBuild("unbound", diags);
    EXPECT_FALSE(prog.has_value());
    EXPECT_TRUE(hasErrors(diags));
    EXPECT_TRUE(anyMessageContains(diags, "unbound label"));
}

TEST(Verifier, TryBuildRejectsFallThrough)
{
    KernelBuilder b;
    b.addi(2, 0, 1); // no halt: execution runs off the end
    std::vector<Diagnostic> diags;
    const auto prog = b.tryBuild("fallthrough", diags);
    EXPECT_FALSE(prog.has_value());
    EXPECT_TRUE(anyMessageContains(diags, "falls through"));
}

TEST(Verifier, TryBuildAcceptsGoodProgram)
{
    KernelBuilder b;
    auto done = b.newLabel();
    b.slti(2, 0, 4);
    b.br(2, done);
    b.addi(3, 0, 1);
    b.bind(done);
    b.halt();
    std::vector<Diagnostic> diags;
    const auto prog = b.tryBuild("good", diags);
    ASSERT_TRUE(prog.has_value());
    EXPECT_FALSE(hasErrors(diags));
}

TEST(Verifier, BuildExitsOnUnboundLabel)
{
    KernelBuilder b;
    auto l = b.newLabel();
    b.br(2, l);
    b.halt();
    EXPECT_EXIT(b.build("bad"), ::testing::ExitedWithCode(1),
                "unbound label");
}

TEST(Verifier, BuildExitsOnFallThrough)
{
    KernelBuilder b;
    b.addi(2, 0, 1);
    EXPECT_EXIT(b.build("bad"), ::testing::ExitedWithCode(1),
                "falls through");
}

// --- verifier: post-dominator referee -------------------------------

TEST(Verifier, IpdomDataflowMatchesChkOnDiamond)
{
    KernelBuilder b;
    auto labC = b.newLabel();
    auto labD = b.newLabel();
    b.addi(2, 2, 1);  // 0
    b.br(3, labC);    // 1
    b.addi(2, 2, 10); // 2
    b.jmp(labD);      // 3
    b.bind(labC);
    b.addi(2, 2, 20); // 4
    b.bind(labD);
    b.addi(2, 2, 30); // 5: post-dominator of the branch
    b.halt();         // 6
    Program p = b.build("diamond");

    const auto chk = CfgAnalysis::immediatePostDominators(p.instructions());
    const auto ref = Verifier::ipdomByDataflow(p.instructions());
    EXPECT_EQ(chk, ref);
    EXPECT_EQ(ref[1], 5);
}

TEST(Verifier, IpdomDataflowMatchesChkOnLoop)
{
    KernelBuilder b;
    auto loop = b.newLabel();
    b.movi(2, 0);     // 0
    b.bind(loop);
    b.addi(2, 2, 1);  // 1
    b.slti(3, 2, 10); // 2
    b.br(3, loop);    // 3
    b.halt();         // 4
    Program p = b.build("loop");

    const auto chk = CfgAnalysis::immediatePostDominators(p.instructions());
    const auto ref = Verifier::ipdomByDataflow(p.instructions());
    EXPECT_EQ(chk, ref);
    EXPECT_EQ(ref[3], 4);
}

TEST(Verifier, IpdomDataflowMatchesChkOnAllKernels)
{
    for (const auto &name : kernelNames()) {
        auto k = makeKernel(name, KernelParams{.scale = KernelScale::Tiny});
        ASSERT_NE(k, nullptr) << name;
        const Program p = k->buildProgram();
        EXPECT_EQ(CfgAnalysis::immediatePostDominators(p.instructions()),
                  Verifier::ipdomByDataflow(p.instructions()))
                << name;
    }
}

TEST(Verifier, AllBuiltinKernelsLintClean)
{
    for (const auto &name : kernelNames()) {
        auto k = makeKernel(name, KernelParams{.scale = KernelScale::Tiny});
        ASSERT_NE(k, nullptr) << name;
        const Program p = k->buildProgram();
        const auto diags = Verifier::verify(p);
        EXPECT_FALSE(hasErrors(diags))
                << name << ": " << toString(diags.front());
    }
}

// --- static divergence analysis -------------------------------------

TEST(Divergence, UniformLoopBranch)
{
    KernelBuilder b;
    auto loop = b.newLabel();
    b.movi(2, 0);    // 0: i = 0
    b.movi(4, 10);   // 1: bound
    b.bind(loop);
    b.addi(2, 2, 1); // 2
    b.slt(3, 2, 4);  // 3
    b.br(3, loop);   // 4: trip count identical in every thread
    b.halt();        // 5
    Program p = b.build("uniform-loop");

    const auto rep = DivergenceAnalysis::analyze(p.instructions());
    EXPECT_FALSE(rep.mayDiverge(4));
    EXPECT_EQ(rep.uniformBranches, 1);
    EXPECT_EQ(rep.divergentBranches, 0);
    // A uniform branch must not be marked subdividable by the CFG pass.
    EXPECT_FALSE(p.at(4).subdividable());
}

TEST(Divergence, ThreadCountDerivedBranchIsUniform)
{
    KernelBuilder b;
    auto end = b.newLabel();
    b.slti(2, 1, 100); // r1 = thread count: same in every thread
    b.br(2, end);
    b.nop();
    b.bind(end);
    b.halt();
    Program p = b.build("nthreads-branch");

    const auto rep = DivergenceAnalysis::analyze(p.instructions());
    EXPECT_FALSE(rep.mayDiverge(1));
}

TEST(Divergence, TidDerivedBranchDiverges)
{
    KernelBuilder b;
    auto end = b.newLabel();
    b.andi(2, 0, 1); // r0 = tid: differs per lane
    b.br(2, end);
    b.nop();
    b.bind(end);
    b.halt();
    Program p = b.build("tid-branch");

    const auto rep = DivergenceAnalysis::analyze(p.instructions());
    EXPECT_TRUE(rep.mayDiverge(1));
    EXPECT_EQ(rep.divergentBranches, 1);
    EXPECT_TRUE(p.at(1).subdividable());
}

TEST(Divergence, LoadedValueDiverges)
{
    KernelBuilder b;
    auto end = b.newLabel();
    b.movi(2, 64); // uniform address...
    b.ld(3, 2);    // ...but loads are always treated as divergent
    b.br(3, end);
    b.nop();
    b.bind(end);
    b.halt();
    Program p = b.build("load-branch");

    const auto rep = DivergenceAnalysis::analyze(p.instructions());
    EXPECT_TRUE(rep.mayDiverge(2));
}

TEST(Divergence, ControlDependenceTaintsMergedValue)
{
    // r3 is written only by movi (uniform operands), but one write sits
    // inside the influence region of a tid-dependent branch, so after
    // re-convergence r3 differs across lanes.
    KernelBuilder b;
    auto l = b.newLabel();
    auto m = b.newLabel();
    b.andi(2, 0, 1); // 0
    b.movi(3, 0);    // 1
    b.br(2, l);      // 2: divergent
    b.movi(3, 1);    // 3: control-dependent write
    b.bind(l);
    b.br(3, m);      // 4: must be classified divergent
    b.nop();         // 5
    b.bind(m);
    b.halt();        // 6
    Program p = b.build("ctrl-taint");

    const auto rep = DivergenceAnalysis::analyze(p.instructions());
    EXPECT_TRUE(rep.mayDiverge(2));
    EXPECT_TRUE(rep.mayDiverge(4));
}

TEST(Divergence, BuiltinKernelsHaveSaneCounts)
{
    for (const auto &name : kernelNames()) {
        auto k = makeKernel(name, KernelParams{.scale = KernelScale::Tiny});
        const Program p = k->buildProgram();
        const auto rep = DivergenceAnalysis::analyze(p.instructions());
        int branches = 0;
        for (Pc pc = 0; pc < p.size(); pc++)
            if (p.at(pc).op == Op::Br)
                branches++;
        EXPECT_EQ(rep.uniformBranches + rep.divergentBranches, branches)
                << name;
        // Every kernel loops over a tid-derived task range.
        EXPECT_GE(rep.divergentBranches, 1) << name;
    }
}

TEST(Divergence, RuntimePredictionsHoldOnUniformLoop)
{
    KernelBuilder b;
    auto loop = b.newLabel();
    b.movi(2, 0);
    b.movi(4, 10);
    b.bind(loop);
    b.addi(2, 2, 1);
    b.slt(3, 2, 4);
    b.br(3, loop);
    b.halt();
    TestKernel k(b.build("uniform-loop"));

    SystemConfig cfg = testConfig(4, 2, 1);
    System sys(cfg, k);
    const RunStats stats = sys.run();
    ASSERT_EQ(stats.wpus.size(), 1u);
    EXPECT_GT(stats.wpus[0].staticUniformBranchExecs, 0u);
    EXPECT_EQ(stats.wpus[0].staticDivergenceMispredicts, 0u);
}

TEST(Divergence, RuntimeCountsDivergentExecs)
{
    KernelBuilder b;
    auto end = b.newLabel();
    b.andi(2, 0, 1);
    b.br(2, end);
    b.addi(3, 0, 1);
    b.bind(end);
    b.halt();
    TestKernel k(b.build("tid-branch"));

    SystemConfig cfg = testConfig(4, 2, 1);
    System sys(cfg, k);
    const RunStats stats = sys.run();
    ASSERT_EQ(stats.wpus.size(), 1u);
    EXPECT_GT(stats.wpus[0].staticDivergentBranchExecs, 0u);
    EXPECT_EQ(stats.wpus[0].staticDivergenceMispredicts, 0u);
}

// --- runtime invariant checker --------------------------------------

Program
tinyProgram()
{
    KernelBuilder b;
    b.addi(2, 0, 1);
    b.halt();
    return b.build("tiny");
}

TEST(Invariants, CleanAfterLaunch)
{
    TestKernel k(tinyProgram());
    SystemConfig cfg = testConfig(4, 2, 1);
    System sys(cfg, k);
    const auto violations = InvariantChecker::auditWpu(sys.wpu(0), 0);
    EXPECT_TRUE(violations.empty())
            << toString(violations.front());
}

TEST(Invariants, CorruptedMaskTrips)
{
    TestKernel k(tinyProgram());
    SystemConfig cfg = testConfig(4, 2, 1);
    System sys(cfg, k);
    ASSERT_FALSE(sys.wpu(0).groups().empty());
    // Steal lane 0 from the root group behind the bookkeeping's back.
    sys.wpu(0).groups()[0]->mask ^= ThreadMask(1);
    const auto violations = InvariantChecker::auditWpu(sys.wpu(0), 0);
    EXPECT_FALSE(violations.empty());
}

TEST(Invariants, ReviveSplitKernelsPassEveryCycleAudit)
{
    for (const auto &name : kernelNames()) {
        SystemConfig cfg = testConfig(8, 2, 2);
        cfg.policy = PolicyConfig::reviveSplit();
        cfg.checkInvariants = 1; // audit every cycle; tick panics on
                                 // the first violation
        const RunResult r = runKernel(name, cfg, KernelScale::Tiny);
        EXPECT_TRUE(r.valid) << name;
    }
}

// --- dataflow passes: adversarial programs --------------------------

/** First diagnostic emitted by `pass` and anchored at `pc` (or null). */
const Diagnostic *
findDiag(const StaticReport &rep, const std::string &pass, Pc pc)
{
    for (const Diagnostic &d : rep.diags)
        if (d.pass == pass && d.pc == pc)
            return &d;
    return nullptr;
}

AnalysisInput
smallInput(std::uint64_t memBytes = 1024, std::int64_t threads = 8)
{
    AnalysisInput in;
    in.memBytes = memBytes;
    in.numThreads = threads;
    return in;
}

TEST(Analyzer, UninitReadFlaggedWithLocation)
{
    // r2 is written on the fall-through path only; the read at pc 2
    // sees the launch zero when the branch is taken.
    std::vector<Instr> code{
            Instr{.op = Op::Br, .ra = 0, .target = 2},
            Instr{.op = Op::Movi, .rd = 2, .imm = 5},
            Instr{.op = Op::Add, .rd = 3, .ra = 2, .rb = 2},
            Instr{.op = Op::Halt}};
    const StaticReport rep =
            StaticAnalyzer::analyze(code, smallInput());
    const Diagnostic *d = findDiag(rep, "init", 2);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_NE(d->message.find("r2"), std::string::npos);
    EXPECT_GE(d->block, 0);
    EXPECT_FALSE(d->snippet.empty());
}

TEST(Analyzer, NeverWrittenRegisterIsZeroIdiomNotUninit)
{
    // r30 is never written anywhere: that is the builder's deliberate
    // zero-register idiom, not a missed initialization.
    std::vector<Instr> code{
            Instr{.op = Op::Add, .rd = 2, .ra = 30, .rb = 30},
            Instr{.op = Op::St, .ra = 2, .rb = 2},
            Instr{.op = Op::Halt}};
    const StaticReport rep =
            StaticAnalyzer::analyze(code, smallInput());
    for (const Diagnostic &d : rep.diags)
        EXPECT_NE(d.pass, "init") << toString(d);
}

TEST(Analyzer, OutOfBoundsLoadIsError)
{
    std::vector<Instr> code{
            Instr{.op = Op::Movi, .rd = 2, .imm = 4096},
            Instr{.op = Op::Ld, .rd = 3, .ra = 2},
            Instr{.op = Op::St, .ra = 2, .rb = 3, .imm = -4096},
            Instr{.op = Op::Halt}};
    const StaticReport rep =
            StaticAnalyzer::analyze(code, smallInput(1024));
    const Diagnostic *d = findDiag(rep, "range", 1);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_EQ(rep.oobAccesses, 1);
    ASSERT_EQ(rep.accesses.size(), 2u);
    EXPECT_EQ(rep.accesses[0].verdict, MemVerdict::OutOfBounds);
    EXPECT_FALSE(rep.accesses[0].isStore);
    // The store at pc 2 lands on byte 0 and must stay clean.
    EXPECT_EQ(rep.accesses[1].verdict, MemVerdict::Proved);
    EXPECT_EQ(findDiag(rep, "range", 2), nullptr);
}

TEST(Analyzer, OutOfBoundsStoreIsError)
{
    // addr = -8: provably below the valid range on every path.
    std::vector<Instr> code{
            Instr{.op = Op::Movi, .rd = 2, .imm = -8},
            Instr{.op = Op::St, .ra = 2, .rb = 30},
            Instr{.op = Op::Halt}};
    const StaticReport rep =
            StaticAnalyzer::analyze(code, smallInput());
    const Diagnostic *d = findDiag(rep, "range", 1);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    ASSERT_EQ(rep.accesses.size(), 1u);
    EXPECT_TRUE(rep.accesses[0].isStore);
    EXPECT_EQ(rep.accesses[0].verdict, MemVerdict::OutOfBounds);
}

TEST(Analyzer, MaskedAccessIsProvedInBounds)
{
    // andi clamps the index to [0,7]; shli scales to byte offsets
    // [0,56], inside the 64-byte arena for an 8-byte word.
    std::vector<Instr> code{
            Instr{.op = Op::Andi, .rd = 2, .ra = 0, .imm = 7},
            Instr{.op = Op::Shli, .rd = 2, .ra = 2, .imm = 3},
            Instr{.op = Op::Ld, .rd = 3, .ra = 2},
            Instr{.op = Op::St, .ra = 2, .rb = 3},
            Instr{.op = Op::Halt}};
    const StaticReport rep =
            StaticAnalyzer::analyze(code, smallInput(64));
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.provedAccesses, 2);
    EXPECT_EQ(rep.oobAccesses, 0);
    ASSERT_EQ(rep.accesses.size(), 2u);
    EXPECT_EQ(rep.accesses[0].addr.lo, 0);
    EXPECT_EQ(rep.accesses[0].addr.hi, 56);
}

TEST(Analyzer, DivergentBarrierIsError)
{
    // Odd threads branch around the barrier: classic barrier
    // divergence, provably non-uniform.
    std::vector<Instr> code{
            Instr{.op = Op::Andi, .rd = 2, .ra = 0, .imm = 1},
            Instr{.op = Op::Br, .ra = 2, .target = 3},
            Instr{.op = Op::Bar},
            Instr{.op = Op::Halt}};
    const StaticReport rep =
            StaticAnalyzer::analyze(code, smallInput());
    const Diagnostic *d = findDiag(rep, "barrier", 2);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    ASSERT_EQ(rep.barrierUniform.size(), code.size());
    EXPECT_FALSE(rep.barrierUniform[2]);
    EXPECT_EQ(rep.barriers, 1);
    EXPECT_EQ(rep.uniformBarriers, 0);
}

TEST(Analyzer, UniformBarrierIsClean)
{
    std::vector<Instr> code{Instr{.op = Op::Bar},
                            Instr{.op = Op::Halt}};
    const StaticReport rep =
            StaticAnalyzer::analyze(code, smallInput());
    EXPECT_TRUE(rep.clean());
    ASSERT_EQ(rep.barrierUniform.size(), code.size());
    EXPECT_TRUE(rep.barrierUniform[0]);
    EXPECT_EQ(rep.uniformBarriers, 1);
}

TEST(Analyzer, DeadStoreFlaggedWithLocation)
{
    // The movi at pc 0 is overwritten before any read.
    std::vector<Instr> code{
            Instr{.op = Op::Movi, .rd = 2, .imm = 1},
            Instr{.op = Op::Movi, .rd = 2, .imm = 0},
            Instr{.op = Op::Ld, .rd = 3, .ra = 2},
            Instr{.op = Op::St, .ra = 2, .rb = 3},
            Instr{.op = Op::Halt}};
    const StaticReport rep =
            StaticAnalyzer::analyze(code, smallInput(64));
    const Diagnostic *d = findDiag(rep, "deadstore", 0);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_NE(d->message.find("dead store"), std::string::npos);
    EXPECT_EQ(findDiag(rep, "deadstore", 1), nullptr);
}

TEST(Analyzer, LoopWithNoExitIsFlagged)
{
    std::vector<Instr> code{
            Instr{.op = Op::Movi, .rd = 2, .imm = 0},
            Instr{.op = Op::Addi, .rd = 2, .ra = 2, .imm = 1},
            Instr{.op = Op::Jmp, .target = 1},
            Instr{.op = Op::Halt}};
    const StaticReport rep =
            StaticAnalyzer::analyze(code, smallInput());
    const Diagnostic *d = findDiag(rep, "loopbound", 1);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_NE(d->message.find("no exit"), std::string::npos);
    ASSERT_EQ(rep.loops.size(), 1u);
    EXPECT_EQ(rep.loops[0].loop.header, 1);
}

TEST(Analyzer, CountedLoopIsStaticallyBounded)
{
    KernelBuilder b;
    b.movi(2, 0);
    const auto loop = b.newLabel();
    b.bind(loop);
    b.addi(2, 2, 1);
    b.slti(3, 2, 10);
    b.br(3, loop);
    b.halt();
    const StaticReport rep = StaticAnalyzer::analyze(
            b.build("counted").instructions(), smallInput());
    ASSERT_EQ(rep.loops.size(), 1u);
    EXPECT_EQ(rep.loops[0].kind, LoopBoundKind::StaticallyBounded);
    EXPECT_EQ(rep.loops[0].inductionReg, 2);
    EXPECT_GE(rep.loops[0].maxTrips, 9);
    EXPECT_LE(rep.loops[0].maxTrips, 10);
    EXPECT_EQ(rep.staticLoops, 1);
    EXPECT_TRUE(rep.clean());
}

TEST(Analyzer, ThreadCountLoopIsInputBounded)
{
    // Bound is r1 (thread count); with no launch knowledge the trip
    // count terminates but depends on runtime input.
    KernelBuilder b;
    b.movi(2, 0);
    const auto loop = b.newLabel();
    b.bind(loop);
    b.addi(2, 2, 1);
    b.slt(3, 2, 1);
    b.br(3, loop);
    b.halt();
    AnalysisInput in = smallInput();
    in.numThreads = 0; // unknown launch width
    const StaticReport rep = StaticAnalyzer::analyze(
            b.build("ntloop").instructions(), in);
    ASSERT_EQ(rep.loops.size(), 1u);
    EXPECT_EQ(rep.loops[0].kind, LoopBoundKind::InputBounded);
    EXPECT_EQ(rep.inputLoops, 1);
    EXPECT_TRUE(rep.clean());
}

TEST(Analyzer, AllKernelsProveCleanUnderEveryPass)
{
    // The acceptance bar for the analyzer: zero errors AND zero
    // warnings on every shipped kernel (notes are fine).
    for (const auto &name : kernelNames()) {
        KernelParams kp;
        const auto kernel = makeKernel(name, kp);
        ASSERT_NE(kernel, nullptr) << name;
        AnalysisInput in;
        in.memBytes = kernel->memBytes();
        in.numThreads = 256;
        const StaticReport rep =
                StaticAnalyzer::analyze(kernel->buildProgram(), in);
        EXPECT_TRUE(rep.clean())
                << name << ": "
                << (rep.diags.empty() ? std::string("(no diags)")
                                      : toString(rep.diags.front()));
        EXPECT_EQ(rep.oobAccesses, 0) << name;
    }
}

// --- dynamic oracle: execution vs. static claims --------------------

TEST(Oracle, KernelsNeverContradictStaticClaims)
{
    const PolicyConfig policies[] = {PolicyConfig::conv(),
                                     PolicyConfig::reviveSplit(),
                                     PolicyConfig::adaptiveSlip()};
    for (const auto &name : kernelNames()) {
        for (const PolicyConfig &pol : policies) {
            SystemConfig cfg = testConfig(8, 2, 2);
            cfg.policy = pol;
            cfg.checkOracle = true;
            KernelParams kp;
            kp.scale = KernelScale::Tiny;
            kp.seed = cfg.seed;
            kp.subdivThreshold = cfg.policy.subdivMaxPostBlock;
            const auto kernel = makeKernel(name, kp);
            ASSERT_NE(kernel, nullptr) << name;
            System sys(cfg, *kernel);
            ASSERT_NE(sys.oracle(), nullptr);
            sys.oracle()->setCollect(true);
            sys.run();
            EXPECT_TRUE(kernel->validate(sys.memory()))
                    << name << "/" << pol.name();
            EXPECT_GT(sys.oracle()->checksPerformed(), 0u) << name;
            const auto &bad = sys.oracle()->contradictions();
            EXPECT_TRUE(bad.empty())
                    << name << "/" << pol.name() << ": " << bad.front();
        }
    }
}

TEST(Oracle, IsPurelyObservational)
{
    // Golden fingerprints must not move: the oracle may read
    // architectural state but never perturb timing or results.
    KernelParams kp;
    kp.scale = KernelScale::Tiny;
    SystemConfig cfg = testConfig(8, 2, 2);
    cfg.policy = PolicyConfig::reviveSplit();
    kp.seed = cfg.seed;
    kp.subdivThreshold = cfg.policy.subdivMaxPostBlock;

    const auto kernel = makeKernel("Merge", kp);
    ASSERT_NE(kernel, nullptr);
    System plain(cfg, *kernel);
    const RunStats base = plain.run();

    cfg.checkOracle = true;
    System checked(cfg, *kernel);
    const RunStats withOracle = checked.run();

    EXPECT_EQ(base.cycles, withOracle.cycles);
    EXPECT_EQ(base.totalScalarInstrs(), withOracle.totalScalarInstrs());
    EXPECT_TRUE(kernel->validate(checked.memory()));
}

TEST(Oracle, DetectsFalseInitClaim)
{
    // Doctor a report that claims r5 is initialized on every path to
    // pc 0; the first issue reads r5 without a write and must trip.
    std::vector<Instr> code{
            Instr{.op = Op::Add, .rd = 3, .ra = 5, .rb = 5},
            Instr{.op = Op::Halt}};
    StaticReport rep;
    rep.mustInit.assign(code.size(), RegSet(1) << 5);
    ExecutionOracle oracle(code, rep, 1);
    oracle.setCollect(true);
    oracle.onIssue(0, 0);
    ASSERT_FALSE(oracle.contradictions().empty());
    EXPECT_NE(oracle.contradictions().front().find("r5"),
              std::string::npos);
}

TEST(Oracle, DetectsOutOfIntervalAccess)
{
    std::vector<Instr> code{Instr{.op = Op::Ld, .rd = 2, .ra = 3},
                            Instr{.op = Op::Halt}};
    StaticReport rep;
    MemAccessClaim claim;
    claim.pc = 0;
    claim.isStore = false;
    claim.addr = Interval{0, 8};
    claim.verdict = MemVerdict::Proved;
    rep.accesses.push_back(claim);
    ExecutionOracle oracle(code, rep, 1);
    oracle.setCollect(true);
    oracle.onMemAccess(0, 0, false, 8); // inside: no contradiction
    EXPECT_TRUE(oracle.contradictions().empty());
    oracle.onMemAccess(0, 0, false, 64); // outside the proven interval
    ASSERT_FALSE(oracle.contradictions().empty());
    EXPECT_NE(oracle.contradictions().front().find("outside"),
              std::string::npos);
}

TEST(Oracle, DetectsLoopBoundOvershoot)
{
    // header = pc 0, latch = pc 1, claimed bound: 1 iteration.
    std::vector<Instr> code{
            Instr{.op = Op::Addi, .rd = 2, .ra = 2, .imm = 1},
            Instr{.op = Op::Jmp, .target = 0},
            Instr{.op = Op::Halt}};
    StaticReport rep;
    LoopBound lb;
    lb.loop.header = 0;
    lb.loop.latches = {1};
    lb.loop.body = {true, true, false};
    lb.kind = LoopBoundKind::StaticallyBounded;
    lb.maxTrips = 1;
    rep.loops.push_back(lb);
    ExecutionOracle oracle(code, rep, 1);
    oracle.setCollect(true);
    oracle.onIssue(0, 0); // entry: 0 trips
    oracle.onIssue(1, 0);
    oracle.onIssue(0, 0); // back edge: trip 1, at the bound
    EXPECT_TRUE(oracle.contradictions().empty());
    oracle.onIssue(1, 0);
    oracle.onIssue(0, 0); // trip 2: exceeds the proven bound
    ASSERT_FALSE(oracle.contradictions().empty());
    EXPECT_NE(oracle.contradictions().front().find("iterated"),
              std::string::npos);
}

TEST(Oracle, DetectsNonLockstepUniformBarrier)
{
    std::vector<Instr> code{Instr{.op = Op::Bar},
                            Instr{.op = Op::Bar},
                            Instr{.op = Op::Halt}};
    StaticReport rep;
    rep.barrierUniform = {true, true, false};
    ExecutionOracle oracle(code, rep, 2);
    oracle.setCollect(true);
    oracle.onBarrier(0, 0); // thread 0 opens round 0 at pc 0
    oracle.onBarrier(1, 1); // thread 1's round 0 is at pc 1: not
                            // lockstep
    ASSERT_FALSE(oracle.contradictions().empty());
    EXPECT_NE(oracle.contradictions().front().find("lockstep"),
              std::string::npos);
}

TEST(Oracle, FinishCatchesMissedBarrierRounds)
{
    std::vector<Instr> code{Instr{.op = Op::Bar},
                            Instr{.op = Op::Halt}};
    StaticReport rep;
    rep.barrierUniform = {true, false};
    ExecutionOracle oracle(code, rep, 2);
    oracle.setCollect(true);
    oracle.onBarrier(0, 0); // only thread 0 ever arrives
    oracle.finish();
    ASSERT_FALSE(oracle.contradictions().empty());
    EXPECT_NE(oracle.contradictions().front().find("rounds"),
              std::string::npos);
}

} // namespace
} // namespace dws
