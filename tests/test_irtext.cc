/**
 * @file
 * Tests for the textual kernel IR: assembler/disassembler round-trip,
 * assembler error paths, the scalar reference interpreter, the seeded
 * kernel generator, the IR-file kernel adapter, and the validated
 * CLI-number parsing helpers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/report.hh"
#include "isa/asm.hh"
#include "isa/builder.hh"
#include "isa/disasm.hh"
#include "isa/kgen.hh"
#include "isa/scalar_ref.hh"
#include "kernels/irfile.hh"
#include "kernels/kernel.hh"
#include "sim/parse.hh"

#include "test_util.hh"

namespace dws {
namespace {

// --- parse helpers ----------------------------------------------------

TEST(Parse, Int64AcceptsDecimalAndHex)
{
    EXPECT_EQ(parseInt64("42"), 42);
    EXPECT_EQ(parseInt64("-7"), -7);
    EXPECT_EQ(parseInt64("0x10"), 16);
    EXPECT_EQ(parseInt64("  8 "), 8);
}

TEST(Parse, Int64RejectsGarbage)
{
    EXPECT_FALSE(parseInt64("").has_value());
    EXPECT_FALSE(parseInt64("abc").has_value());
    EXPECT_FALSE(parseInt64("12abc").has_value());
    EXPECT_FALSE(parseInt64("1 2").has_value());
    EXPECT_FALSE(parseInt64("99999999999999999999999").has_value());
}

TEST(Parse, Uint64RejectsSign)
{
    EXPECT_EQ(parseUint64("123"), 123u);
    EXPECT_FALSE(parseUint64("-1").has_value());
    EXPECT_FALSE(parseUint64("+1").has_value());
    EXPECT_FALSE(parseUint64("12x").has_value());
}

TEST(Parse, FiniteDouble)
{
    EXPECT_DOUBLE_EQ(*parseFiniteDouble("1.5"), 1.5);
    EXPECT_FALSE(parseFiniteDouble("inf").has_value());
    EXPECT_FALSE(parseFiniteDouble("nan").has_value());
    EXPECT_FALSE(parseFiniteDouble("1.5x").has_value());
}

TEST(Parse, Int64InRange)
{
    EXPECT_EQ(parseInt64InRange("5", 1, 10), 5);
    EXPECT_FALSE(parseInt64InRange("0", 1, 10).has_value());
    EXPECT_FALSE(parseInt64InRange("11", 1, 10).has_value());
    EXPECT_FALSE(parseInt64InRange("x", 1, 10).has_value());
}

// --- assembler basics -------------------------------------------------

constexpr const char *kTinyKernel = R"(.kernel tiny
.subdiv 9
.membytes 64
.data 0 5 -6 7
    movi r2, 3
    addi r3, r2, -1
    ld r4, [r3]
    st [r3 + 8], r4
    halt
)";

TEST(Asm, ParsesDirectivesAndInstructions)
{
    std::vector<AsmDiag> diags;
    auto ak = assemble(kTinyKernel, diags);
    ASSERT_TRUE(ak.has_value()) << (diags.empty()
                                            ? ""
                                            : toString(diags[0]));
    EXPECT_EQ(ak->name, "tiny");
    EXPECT_EQ(ak->subdivThreshold, 9);
    EXPECT_EQ(ak->memBytes, 64u);
    ASSERT_EQ(ak->data.size(), 1u);
    EXPECT_EQ(ak->data[0].words,
              (std::vector<std::int64_t>{5, -6, 7}));
    ASSERT_EQ(ak->program.size(), 5);
    EXPECT_EQ(ak->program.at(0).op, Op::Movi);
    EXPECT_EQ(ak->program.at(2).op, Op::Ld);
    EXPECT_EQ(ak->program.at(2).imm, 0);
    EXPECT_EQ(ak->program.at(3).op, Op::St);
    EXPECT_EQ(ak->program.at(3).imm, 8);
    EXPECT_EQ(ak->program.subdivThreshold(), 9);
}

TEST(Asm, ResolvesLabelsAndAbsoluteTargets)
{
    std::vector<AsmDiag> diags;
    auto ak = assemble(R"(
.membytes 8
    movi r2, 1
loop:
    addi r2, r2, -1
    br r2, loop
    jmp @4
    halt
)",
                       diags);
    ASSERT_TRUE(ak.has_value());
    EXPECT_EQ(ak->program.at(2).op, Op::Br);
    EXPECT_EQ(ak->program.at(2).target, 1);
    EXPECT_EQ(ak->program.at(3).target, 4);
}

TEST(Asm, InfersMemBytesFromSegments)
{
    std::vector<AsmDiag> diags;
    auto ak = assemble(".data 16 1 2\n    halt\n", diags);
    ASSERT_TRUE(ak.has_value());
    EXPECT_EQ(ak->memBytes, 32u); // two words at byte 16 end at 32
}

TEST(Asm, InitMemoryAppliesDataAndFill)
{
    std::vector<AsmDiag> diags;
    auto ak = assemble(
            ".membytes 64\n.data 0 11 -2\n.fill 32 2 7 255\n    halt\n",
            diags);
    ASSERT_TRUE(ak.has_value());
    Memory mem(ak->memBytes);
    ak->initMemory(mem);
    EXPECT_EQ(mem.read(0), 11);
    EXPECT_EQ(mem.read(8), -2);
    Rng rng(7);
    EXPECT_EQ(mem.read(32), static_cast<std::int64_t>(rng.next() & 255));
    EXPECT_EQ(mem.read(40), static_cast<std::int64_t>(rng.next() & 255));
}

// --- assembler error paths --------------------------------------------

/** @return all diagnostics concatenated (for EXPECT_NE substring). */
std::string
diagText(const std::vector<AsmDiag> &diags)
{
    std::string s;
    for (const AsmDiag &d : diags)
        s += toString(d) + "\n";
    return s;
}

TEST(AsmErrors, UnknownOpcodeCarriesLineNumber)
{
    std::vector<AsmDiag> diags;
    auto ak = assemble("    movi r2, 1\n    frobnicate r2\n    halt\n",
                       diags);
    EXPECT_FALSE(ak.has_value());
    ASSERT_FALSE(diags.empty());
    EXPECT_EQ(diags[0].line, 2);
    EXPECT_NE(diagText(diags).find("frobnicate"), std::string::npos);
}

TEST(AsmErrors, BadRegisterAndMissingComma)
{
    std::vector<AsmDiag> diags;
    EXPECT_FALSE(assemble("    movi r32, 1\n    halt\n", diags)
                         .has_value());
    EXPECT_NE(diagText(diags).find("line 1"), std::string::npos);

    diags.clear();
    EXPECT_FALSE(
            assemble("    add r2 r3, r4\n    halt\n", diags).has_value());
    EXPECT_FALSE(diags.empty());
}

TEST(AsmErrors, UnresolvedAndDuplicateLabels)
{
    std::vector<AsmDiag> diags;
    EXPECT_FALSE(assemble("    jmp nowhere\n    halt\n", diags)
                         .has_value());
    EXPECT_NE(diagText(diags).find("nowhere"), std::string::npos);

    diags.clear();
    EXPECT_FALSE(assemble("a:\n    movi r2, 0\na:\n    halt\n", diags)
                         .has_value());
    EXPECT_NE(diagText(diags).find("duplicate"), std::string::npos);
}

TEST(AsmErrors, TargetPastEndIsVerifierErrorNotAbort)
{
    // @5 in a 2-instruction program: resolvable syntactically, invalid
    // structurally. Must produce a diagnostic, not a process abort.
    std::vector<AsmDiag> diags;
    EXPECT_FALSE(
            assemble("    jmp @5\n    halt\n", diags).has_value());
    EXPECT_FALSE(diags.empty());
}

TEST(AsmErrors, TrailingTokensRejected)
{
    std::vector<AsmDiag> diags;
    EXPECT_FALSE(assemble("    halt r2\n", diags).has_value());
    EXPECT_FALSE(diags.empty());
}

TEST(AsmErrors, OutOfRangeImmediateCarriesLineNumber)
{
    std::vector<AsmDiag> diags;
    EXPECT_FALSE(assemble("    movi r2, 99999999999999999999999\n"
                          "    halt\n",
                          diags)
                         .has_value());
    ASSERT_FALSE(diags.empty());
    EXPECT_EQ(diags[0].line, 1);

    diags.clear();
    EXPECT_FALSE(
            assemble("    jmp @99999999\n    halt\n", diags).has_value());
    EXPECT_FALSE(diags.empty());
}

TEST(AsmErrors, AnnotationMismatchIsChecked)
{
    // The branch condition depends on r0 (the tid), so the divergence
    // analysis cannot prove it uniform: asserting !uniform must fail.
    std::vector<AsmDiag> diags;
    auto ak = assemble(R"(
.membytes 8
    andi r2, r0, 1
    br r2, done !uniform
    movi r3, 1
done:
    halt
)",
                       diags);
    EXPECT_FALSE(ak.has_value());
    EXPECT_NE(diagText(diags).find("uniform"), std::string::npos);

    // Wrong ipdom assertion.
    diags.clear();
    ak = assemble(R"(
.membytes 8
    andi r2, r0, 1
    br r2, done !ipdom=@1
    movi r3, 1
done:
    halt
)",
                  diags);
    EXPECT_FALSE(ak.has_value());
    EXPECT_NE(diagText(diags).find("ipdom"), std::string::npos);
}

TEST(AsmErrors, DeclaredMemBytesTooSmallForSegments)
{
    std::vector<AsmDiag> diags;
    EXPECT_FALSE(assemble(".membytes 8\n.data 8 1\n    halt\n", diags)
                         .has_value());
    EXPECT_NE(diagText(diags).find("membytes"), std::string::npos);
}

// --- round-trip: asm(disasm(P)) == P ----------------------------------

/** Assemble `text`, requiring success. */
AsmKernel
mustAssemble(const std::string &text)
{
    std::vector<AsmDiag> diags;
    auto ak = assemble(text, diags);
    EXPECT_TRUE(ak.has_value()) << diagText(diags) << "\n" << text;
    if (!ak.has_value())
        return AsmKernel{};
    return *ak;
}

TEST(RoundTrip, BuiltinKernelsAreBitExact)
{
    KernelParams kp;
    kp.scale = KernelScale::Tiny;
    for (const std::string &name : kernelNames()) {
        auto k = makeKernel(name, kp);
        ASSERT_NE(k, nullptr) << name;
        const Program p = k->buildProgram();
        const AsmKernel ak = mustAssemble(disasm(p, k->memBytes()));
        EXPECT_TRUE(ak.program == p) << name;
        EXPECT_EQ(ak.name, p.name()) << name;
        EXPECT_EQ(ak.subdivThreshold, p.subdivThreshold()) << name;
        EXPECT_EQ(ak.memBytes, k->memBytes()) << name;
    }
}

TEST(RoundTrip, GeneratedKernelsAreBitExact)
{
    for (std::uint64_t seed = 1; seed <= 100; seed++) {
        KgenOptions opt;
        opt.seed = seed;
        const AsmKernel a = mustAssemble(generateKernel(opt));
        const AsmKernel b =
                mustAssemble(disasm(a.program, a.memBytes));
        EXPECT_TRUE(a.program == b.program) << "seed " << seed;
        EXPECT_EQ(a.memBytes, b.memBytes) << "seed " << seed;
    }
}

TEST(RoundTrip, DisasmOfReassembledListingIsAFixpoint)
{
    KgenOptions opt;
    opt.seed = 3;
    const AsmKernel a = mustAssemble(generateKernel(opt));
    const std::string once = disasm(a.program, a.memBytes);
    const std::string twice =
            disasm(mustAssemble(once).program, a.memBytes);
    EXPECT_EQ(once, twice);
}

// --- generated kernels are lint-clean ---------------------------------

TEST(Kgen, HundredSeededKernelsAreLintClean)
{
    for (std::uint64_t seed = 1; seed <= 100; seed++) {
        KgenOptions opt;
        opt.seed = seed;
        const AsmKernel ak = mustAssemble(generateKernel(opt));
        AnalysisInput input;
        input.memBytes = ak.memBytes;
        input.numThreads = 64;
        const StaticReport rep =
                StaticAnalyzer::analyze(ak.program, input);
        EXPECT_TRUE(rep.clean())
                << "seed " << seed << ": " << rep.errors()
                << " errors, " << rep.warnings() << " warnings";
    }
}

TEST(Kgen, SameSeedSameText)
{
    KgenOptions opt;
    opt.seed = 17;
    EXPECT_EQ(generateKernel(opt), generateKernel(opt));
    KgenOptions other = opt;
    other.seed = 18;
    EXPECT_NE(generateKernel(opt), generateKernel(other));
}

// --- scalar reference interpreter -------------------------------------

TEST(ScalarRef, ComputesPerThreadStores)
{
    // mem[tid*8] = tid*3 for every thread.
    const AsmKernel ak = mustAssemble(R"(
.membytes 64
    muli r2, r0, 3
    shli r3, r0, 3
    st [r3], r2
    halt
)");
    Memory mem(ak.memBytes);
    const ScalarRefResult r = runScalarRef(ak.program, mem, 8);
    ASSERT_TRUE(r.ok) << r.error;
    for (std::int64_t t = 0; t < 8; t++)
        EXPECT_EQ(mem.read(static_cast<Addr>(t) * 8), t * 3);
    EXPECT_EQ(r.instrs, 8u * 4u);
}

TEST(ScalarRef, BarrierOrdersPhases)
{
    // Phase 1: each thread stores tid. Barrier. Phase 2: thread t
    // reads slot (t+1) mod n — defined only because of the barrier.
    const AsmKernel ak = mustAssemble(R"(
.membytes 128
    shli r2, r0, 3
    st [r2], r0
    bar
    addi r3, r0, 1
    slt r4, r3, r1
    br r4, ok
    movi r3, 0
ok:
    shli r3, r3, 3
    ld r5, [r3]
    st [r2 + 64], r5
    halt
)");
    Memory mem(ak.memBytes);
    const ScalarRefResult r = runScalarRef(ak.program, mem, 8);
    ASSERT_TRUE(r.ok) << r.error;
    for (std::int64_t t = 0; t < 8; t++)
        EXPECT_EQ(mem.read(static_cast<Addr>(t) * 8 + 64), (t + 1) % 8);
}

TEST(ScalarRef, ReportsOutOfBoundsAccess)
{
    const AsmKernel ak = mustAssemble(R"(
.membytes 16
    movi r2, 1024
    ld r3, [r2]
    halt
)");
    Memory mem(ak.memBytes);
    const ScalarRefResult r = runScalarRef(ak.program, mem, 1);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("address"), std::string::npos);
}

TEST(ScalarRef, ReportsRunawayProgram)
{
    // The loop condition is data-dependent (always true at runtime),
    // so the verifier's halt-reachability check passes but execution
    // never terminates.
    const AsmKernel ak = mustAssemble(R"(
.membytes 8
    movi r2, 1
loop:
    br r2, loop
    halt
)");
    Memory mem(ak.memBytes);
    const ScalarRefResult r = runScalarRef(ak.program, mem, 1, 1000);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("budget"), std::string::npos);
}

// --- differential oracle: scalar ref vs simulator ---------------------

TEST(Oracle, GeneratedKernelsMatchAcrossPolicies)
{
    const SystemConfig base = testConfig(8, 2, 2);
    const PolicyConfig policies[] = {
        PolicyConfig::conv(),
        PolicyConfig::reviveSplit(),
        PolicyConfig::dws(SplitScheme::Aggressive),
        PolicyConfig::adaptiveSlip(),
    };
    for (std::uint64_t seed = 1; seed <= 5; seed++) {
        KgenOptions opt;
        opt.seed = seed;
        std::vector<AsmDiag> diags;
        auto ak = assemble(generateKernel(opt), diags);
        ASSERT_TRUE(ak.has_value());
        for (const PolicyConfig &pol : policies) {
            SystemConfig cfg = base;
            cfg.policy = pol;
            KernelParams kp;
            kp.launchThreads = cfg.totalThreads();
            auto kern = makeIrKernel(*ak, kp);
            ASSERT_NE(kern, nullptr);
            System sys(cfg, *kern);
            sys.run();
            EXPECT_TRUE(kern->validate(sys.memory()))
                    << "seed " << seed << " policy " << pol.name();
        }
    }
}

// --- IR-file kernel adapter -------------------------------------------

TEST(IrFile, SpecDetection)
{
    EXPECT_TRUE(looksLikeIrFile("foo.dws"));
    EXPECT_TRUE(looksLikeIrFile("dir/foo"));
    EXPECT_FALSE(looksLikeIrFile("FFT"));
    EXPECT_FALSE(looksLikeIrFile("gen1"));
}

TEST(IrFile, MakeKernelLoadsAndRunsAFile)
{
    const std::string path = ::testing::TempDir() + "irtext_tiny.dws";
    {
        std::ofstream f(path, std::ios::trunc);
        KgenOptions opt;
        opt.seed = 42;
        f << generateKernel(opt);
    }
    SystemConfig cfg = testConfig(8, 2, 1);
    cfg.policy = PolicyConfig::reviveSplit();
    KernelParams kp;
    kp.launchThreads = cfg.totalThreads();
    auto kern = makeKernel(path, kp);
    ASSERT_NE(kern, nullptr);
    EXPECT_EQ(kern->name(), "gen42");
    System sys(cfg, *kern);
    sys.run();
    EXPECT_TRUE(kern->validate(sys.memory()));
    std::remove(path.c_str());
}

TEST(IrFile, MissingFileYieldsNullNotAbort)
{
    EXPECT_EQ(makeKernel("no/such/file.dws", KernelParams{}), nullptr);
}

} // namespace
} // namespace dws
