/**
 * @file
 * Tests for the parallel experiment executor: submission-order result
 * collection, JSON records, worker-pool sizing, and the headline
 * guarantee that `--jobs N` produces bit-identical statistics to
 * `--jobs 1` for every kernel under every policy family.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "harness/executor.hh"
#include "harness/sweep.hh"
#include "test_util.hh"

namespace dws {
namespace {

TEST(Executor, ResultsComeBackInSubmissionOrder)
{
    SweepExecutor ex(4);
    const SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    std::vector<SweepJob> jobs;
    for (const auto &name : kernelNames())
        jobs.push_back(SweepJob{name, cfg, KernelScale::Tiny, "Conv"});
    const std::vector<JobResult> results = ex.runBatch(std::move(jobs));
    ASSERT_EQ(results.size(), kernelNames().size());
    for (size_t i = 0; i < results.size(); i++) {
        EXPECT_EQ(results[i].run.kernel, kernelNames()[i]);
        EXPECT_TRUE(results[i].run.valid) << kernelNames()[i];
        EXPECT_GT(results[i].wallMs, 0.0);
    }
    // Records mirror the submission order regardless of completion.
    const auto recs = ex.records();
    ASSERT_EQ(recs.size(), kernelNames().size());
    for (size_t i = 0; i < recs.size(); i++) {
        EXPECT_EQ(recs[i].kernel, kernelNames()[i]);
        EXPECT_EQ(recs[i].label, "Conv");
        EXPECT_GT(recs[i].cycles, 0u);
    }
}

TEST(Executor, JobsAcrossConfigsMatchSerialRuns)
{
    // Two different configurations in flight at once must not perturb
    // each other (no shared mutable state between Systems).
    SweepExecutor ex(4);
    SystemConfig a = SystemConfig::table3(PolicyConfig::conv());
    SystemConfig b = SystemConfig::table3(PolicyConfig::reviveSplit());
    auto fa = ex.submit(SweepJob{"SVM", a, KernelScale::Tiny, "A"});
    auto fb = ex.submit(SweepJob{"SVM", b, KernelScale::Tiny, "B"});
    const RunStats sa = fa.get().run.stats;
    const RunStats sb = fb.get().run.stats;
    EXPECT_EQ(sa.fingerprint(),
              runKernel("SVM", a, KernelScale::Tiny).stats.fingerprint());
    EXPECT_EQ(sb.fingerprint(),
              runKernel("SVM", b, KernelScale::Tiny).stats.fingerprint());
}

TEST(Executor, DefaultJobsHonorsEnvOverride)
{
    setenv("DWS_JOBS", "5", 1);
    EXPECT_EQ(SweepExecutor::defaultJobs(), 5);
    unsetenv("DWS_JOBS");
    EXPECT_GE(SweepExecutor::defaultJobs(), 1);
}

TEST(Executor, DefaultJobsRejectsGarbageEnv)
{
    // Malformed or out-of-range DWS_JOBS must not be silently
    // truncated by atoi into a bogus pool size.
    setenv("DWS_JOBS", "8cores", 1);
    EXPECT_EXIT(SweepExecutor::defaultJobs(),
                ::testing::ExitedWithCode(1), "DWS_JOBS");
    setenv("DWS_JOBS", "-3", 1);
    EXPECT_EXIT(SweepExecutor::defaultJobs(),
                ::testing::ExitedWithCode(1), "DWS_JOBS");
    unsetenv("DWS_JOBS");
}

TEST(Journal, MalformedNumericTokensForceReRun)
{
    const std::string path =
            ::testing::TempDir() + "dws_corrupt_journal.jsonl";
    std::remove(path.c_str());

    const SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    {
        SweepExecutor ex(1);
        ex.setJournal(path, false);
        const auto res = ex.runBatch(
                {SweepJob{"SVM", cfg, KernelScale::Tiny, "J"}});
        ASSERT_TRUE(res[0].ok());
    }

    // Corrupt the cycles token in the journaled line.
    std::string text;
    {
        std::ifstream f(path);
        std::getline(f, text);
    }
    const auto pos = text.find("\"cycles\":");
    ASSERT_NE(pos, std::string::npos);
    text.insert(pos + 9, "x");
    {
        std::ofstream f(path, std::ios::trunc);
        f << text << "\n";
    }

    // A resume over the corrupt journal must re-simulate the cell
    // instead of restoring it with a garbage cycle count.
    {
        SweepExecutor ex(1);
        ex.setJournal(path, true);
        const auto res = ex.runBatch(
                {SweepJob{"SVM", cfg, KernelScale::Tiny, "J"}});
        ASSERT_TRUE(res[0].ok());
        EXPECT_FALSE(res[0].resumed);
        EXPECT_GT(res[0].run.stats.cycles, 0u);
    }
    std::remove(path.c_str());
}

TEST(Executor, WritesJsonRecords)
{
    const std::string path = ::testing::TempDir() + "dws_exec_test.json";
    {
        SweepExecutor ex(2);
        const SystemConfig cfg =
                SystemConfig::table3(PolicyConfig::conv());
        ex.runBatch({SweepJob{"SVM", cfg, KernelScale::Tiny, "Conv"},
                     SweepJob{"Short", cfg, KernelScale::Tiny, "Conv"}});
        ex.writeJson(path);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    EXPECT_NE(json.find("\"jobs\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"kernel\": \"SVM\""), std::string::npos);
    EXPECT_NE(json.find("\"kernel\": \"Short\""), std::string::npos);
    EXPECT_NE(json.find("\"valid\": true"), std::string::npos);
    EXPECT_NE(json.find("\"wall_ms\""), std::string::npos);
    // SVM was submitted first: records keep submission order.
    EXPECT_LT(json.find("\"kernel\": \"SVM\""),
              json.find("\"kernel\": \"Short\""));
    std::remove(path.c_str());
}

/**
 * The headline determinism guarantee: a parallel sweep produces
 * bit-identical RunStats to a serial one for every kernel under each
 * policy family (Conv, DWS.ReviveSplit, adaptive Slip).
 */
TEST(Executor, ParallelMatchesSerialForEveryKernelAndPolicy)
{
    const std::vector<std::pair<std::string, PolicyConfig>> policies = {
        {"Conv", PolicyConfig::conv()},
        {"DWS.ReviveSplit", PolicyConfig::reviveSplit()},
        {"Slip", PolicyConfig::adaptiveSlip()},
    };

    SweepExecutor parallel(4);
    SweepExecutor serial(1);

    // Submit the full kernel x policy grid to the 4-worker pool first,
    // then the same grid to the 1-worker pool.
    std::vector<PendingRun> par, ser;
    for (const auto &[label, pol] : policies) {
        par.push_back(runAllAsync(label, SystemConfig::table3(pol),
                                  KernelScale::Tiny, {}, parallel));
        ser.push_back(runAllAsync(label, SystemConfig::table3(pol),
                                  KernelScale::Tiny, {}, serial));
    }
    for (size_t i = 0; i < policies.size(); i++) {
        const PolicyRun p = par[i].get();
        const PolicyRun s = ser[i].get();
        ASSERT_EQ(p.stats.size(), s.stats.size());
        for (const auto &[name, ps] : p.stats) {
            EXPECT_EQ(ps.fingerprint(), s.stats.at(name).fingerprint())
                    << policies[i].first << "/" << name;
        }
    }
}

// --- golden fingerprints ----------------------------------------------

/**
 * Strip the energy token from a fingerprint string. Energy is derived
 * from the counters by floating-point arithmetic, so it is the one
 * field whose text could legitimately drift under compiler or math
 * changes; everything else must stay bit-identical.
 */
std::string
stripEnergy(std::string s)
{
    const size_t at = s.find(" energy");
    if (at == std::string::npos)
        return s;
    const size_t end = s.find('|', at);
    s.erase(at, end == std::string::npos ? std::string::npos : end - at);
    return s;
}

/** FNV-1a 64 over the (energy-stripped) fingerprint text. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

struct GoldenRow
{
    const char *policy;
    const char *kernel;
    std::uint64_t hash;
};

/**
 * Hashes recorded from the tree BEFORE the event-queue/ready-list/arena
 * hot-path refactor (the std::function event queue with per-tick linear
 * scans). Any divergence here means the refactor changed simulated
 * behavior, not just simulator speed. Regenerate only for intentional
 * model changes, never to make a hot-path "optimization" pass.
 */
constexpr GoldenRow kGolden[] = {
    {"Conv", "FFT", 0x8a9ba6708e49ca52ULL},
    {"Conv", "Filter", 0xd68a559501047ea7ULL},
    {"Conv", "HotSpot", 0xfb90e9933e571b43ULL},
    {"Conv", "LU", 0xc550e7073e7dccfbULL},
    {"Conv", "Merge", 0xe72493de2ffe16bfULL},
    {"Conv", "Short", 0x872f6d0d42f56127ULL},
    {"Conv", "KMeans", 0xfe30ac8640114c99ULL},
    {"Conv", "SVM", 0x1134350f3d44253cULL},
    {"DWS.AggressSplit", "FFT", 0x052e26f2891db04bULL},
    {"DWS.AggressSplit", "Filter", 0x11ca01198bd88340ULL},
    {"DWS.AggressSplit", "HotSpot", 0x16fb747f53da9931ULL},
    {"DWS.AggressSplit", "LU", 0xf63da98af3998b68ULL},
    {"DWS.AggressSplit", "Merge", 0x550f2b895d23dd09ULL},
    {"DWS.AggressSplit", "Short", 0x94193ed3a064c1deULL},
    {"DWS.AggressSplit", "KMeans", 0x85f043588c0b325fULL},
    {"DWS.AggressSplit", "SVM", 0x4fc9d30e3aa6d236ULL},
    {"DWS.ReviveSplit", "FFT", 0x9757c2fb2bf78d47ULL},
    {"DWS.ReviveSplit", "Filter", 0xd0005ae95e148ebaULL},
    {"DWS.ReviveSplit", "HotSpot", 0xa920aa36c9eedc71ULL},
    {"DWS.ReviveSplit", "LU", 0x2dc05f0f79154584ULL},
    {"DWS.ReviveSplit", "Merge", 0xdc14a9488b0373b7ULL},
    {"DWS.ReviveSplit", "Short", 0x653bf80b7b450331ULL},
    {"DWS.ReviveSplit", "KMeans", 0x64e2af41948dfb84ULL},
    {"DWS.ReviveSplit", "SVM", 0x31a731a5aa873e42ULL},
    {"Slip", "FFT", 0xe954352d0854b5efULL},
    {"Slip", "Filter", 0x5788471f0d61f5a2ULL},
    {"Slip", "HotSpot", 0x776e5577f27eb1c5ULL},
    {"Slip", "LU", 0xfbba1e0901bc0ef5ULL},
    {"Slip", "Merge", 0xb3885097cd2be5e8ULL},
    {"Slip", "Short", 0x9850052c2f16e907ULL},
    {"Slip", "KMeans", 0x43cc431a992caff2ULL},
    {"Slip", "SVM", 0x39627c4351c836c3ULL},
};

PolicyConfig
policyByName(const std::string &name)
{
    if (name == "Conv")
        return PolicyConfig::conv();
    if (name == "DWS.AggressSplit")
        return PolicyConfig::dws(SplitScheme::Aggressive);
    if (name == "DWS.ReviveSplit")
        return PolicyConfig::reviveSplit();
    if (name == "Slip")
        return PolicyConfig::adaptiveSlip();
    ADD_FAILURE() << "unknown policy " << name;
    return PolicyConfig::conv();
}

TEST(GoldenFingerprints, EveryKernelAndPolicyMatchesPreRefactorTree)
{
    for (const GoldenRow &row : kGolden) {
        const SystemConfig cfg =
                SystemConfig::table3(policyByName(row.policy));
        const RunResult r = runKernel(row.kernel, cfg, KernelScale::Tiny);
        ASSERT_TRUE(r.valid) << row.policy << "/" << row.kernel;
        const std::string fp = stripEnergy(r.stats.fingerprint());
        EXPECT_EQ(fnv1a(fp), row.hash)
                << row.policy << "/" << row.kernel << ": " << fp;
    }
}

// --- composable fabric equivalence ------------------------------------

/**
 * Spelling Table 3 as an explicit HierarchySpec must reproduce the
 * legacy flat-field machine bit for bit: same cycles, same counters,
 * same fingerprint, across every kernel and the three headline
 * policies.
 */
TEST(CacheFabric, ExplicitTable3SpecMatchesLegacyFingerprints)
{
    const char *policies[] = {"Conv", "DWS.ReviveSplit", "Slip"};
    for (const char *pol : policies) {
        for (const auto &kernel : kernelNames()) {
            const SystemConfig legacy =
                    SystemConfig::table3(policyByName(pol));
            SystemConfig spelled = legacy;
            spelled.applyHierarchy(HierarchySpec::table3());
            const RunResult a =
                    runKernel(kernel, legacy, KernelScale::Tiny);
            const RunResult b =
                    runKernel(kernel, spelled, KernelScale::Tiny);
            ASSERT_TRUE(a.valid && b.valid) << pol << "/" << kernel;
            EXPECT_EQ(a.stats.fingerprint(), b.stats.fingerprint())
                    << pol << "/" << kernel;
        }
    }
}

/**
 * Fingerprints of runs on deeper hierarchies carry extra per-level
 * cache blocks; the strict parser must round-trip them (the sweep
 * journal's --resume depends on this).
 */
TEST(CacheFabric, DeeperFingerprintBlocksRoundTrip)
{
    SystemConfig cfg = SystemConfig::table3(PolicyConfig::reviveSplit());
    cfg.applyHierarchy(HierarchySpec::withL3(8u << 20, 16, 60));
    const RunResult r = runKernel("Merge", cfg, KernelScale::Tiny);
    ASSERT_TRUE(r.valid);
    ASSERT_EQ(r.stats.mem.deeper.size(), 1u);
    const std::string fp = r.stats.fingerprint();
    RunStats parsed;
    ASSERT_TRUE(RunStats::parseFingerprint(fp, parsed));
    ASSERT_EQ(parsed.mem.deeper.size(), 1u);
    EXPECT_EQ(parsed.mem.deeper[0].reads, r.stats.mem.deeper[0].reads);
    EXPECT_EQ(parsed.fingerprint(), fp);
}

} // namespace
} // namespace dws
