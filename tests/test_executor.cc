/**
 * @file
 * Tests for the parallel experiment executor: submission-order result
 * collection, JSON records, worker-pool sizing, and the headline
 * guarantee that `--jobs N` produces bit-identical statistics to
 * `--jobs 1` for every kernel under every policy family.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "harness/executor.hh"
#include "harness/sweep.hh"
#include "test_util.hh"

namespace dws {
namespace {

TEST(Executor, ResultsComeBackInSubmissionOrder)
{
    SweepExecutor ex(4);
    const SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    std::vector<SweepJob> jobs;
    for (const auto &name : kernelNames())
        jobs.push_back(SweepJob{name, cfg, KernelScale::Tiny, "Conv"});
    const std::vector<JobResult> results = ex.runBatch(std::move(jobs));
    ASSERT_EQ(results.size(), kernelNames().size());
    for (size_t i = 0; i < results.size(); i++) {
        EXPECT_EQ(results[i].run.kernel, kernelNames()[i]);
        EXPECT_TRUE(results[i].run.valid) << kernelNames()[i];
        EXPECT_GT(results[i].wallMs, 0.0);
    }
    // Records mirror the submission order regardless of completion.
    const auto recs = ex.records();
    ASSERT_EQ(recs.size(), kernelNames().size());
    for (size_t i = 0; i < recs.size(); i++) {
        EXPECT_EQ(recs[i].kernel, kernelNames()[i]);
        EXPECT_EQ(recs[i].label, "Conv");
        EXPECT_GT(recs[i].cycles, 0u);
    }
}

TEST(Executor, JobsAcrossConfigsMatchSerialRuns)
{
    // Two different configurations in flight at once must not perturb
    // each other (no shared mutable state between Systems).
    SweepExecutor ex(4);
    SystemConfig a = SystemConfig::table3(PolicyConfig::conv());
    SystemConfig b = SystemConfig::table3(PolicyConfig::reviveSplit());
    auto fa = ex.submit(SweepJob{"SVM", a, KernelScale::Tiny, "A"});
    auto fb = ex.submit(SweepJob{"SVM", b, KernelScale::Tiny, "B"});
    const RunStats sa = fa.get().run.stats;
    const RunStats sb = fb.get().run.stats;
    EXPECT_EQ(sa.fingerprint(),
              runKernel("SVM", a, KernelScale::Tiny).stats.fingerprint());
    EXPECT_EQ(sb.fingerprint(),
              runKernel("SVM", b, KernelScale::Tiny).stats.fingerprint());
}

TEST(Executor, DefaultJobsHonorsEnvOverride)
{
    setenv("DWS_JOBS", "5", 1);
    EXPECT_EQ(SweepExecutor::defaultJobs(), 5);
    unsetenv("DWS_JOBS");
    EXPECT_GE(SweepExecutor::defaultJobs(), 1);
}

TEST(Executor, WritesJsonRecords)
{
    const std::string path = ::testing::TempDir() + "dws_exec_test.json";
    {
        SweepExecutor ex(2);
        const SystemConfig cfg =
                SystemConfig::table3(PolicyConfig::conv());
        ex.runBatch({SweepJob{"SVM", cfg, KernelScale::Tiny, "Conv"},
                     SweepJob{"Short", cfg, KernelScale::Tiny, "Conv"}});
        ex.writeJson(path);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    EXPECT_NE(json.find("\"jobs\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"kernel\": \"SVM\""), std::string::npos);
    EXPECT_NE(json.find("\"kernel\": \"Short\""), std::string::npos);
    EXPECT_NE(json.find("\"valid\": true"), std::string::npos);
    EXPECT_NE(json.find("\"wall_ms\""), std::string::npos);
    // SVM was submitted first: records keep submission order.
    EXPECT_LT(json.find("\"kernel\": \"SVM\""),
              json.find("\"kernel\": \"Short\""));
    std::remove(path.c_str());
}

/**
 * The headline determinism guarantee: a parallel sweep produces
 * bit-identical RunStats to a serial one for every kernel under each
 * policy family (Conv, DWS.ReviveSplit, adaptive Slip).
 */
TEST(Executor, ParallelMatchesSerialForEveryKernelAndPolicy)
{
    const std::vector<std::pair<std::string, PolicyConfig>> policies = {
        {"Conv", PolicyConfig::conv()},
        {"DWS.ReviveSplit", PolicyConfig::reviveSplit()},
        {"Slip", PolicyConfig::adaptiveSlip()},
    };

    SweepExecutor parallel(4);
    SweepExecutor serial(1);

    // Submit the full kernel x policy grid to the 4-worker pool first,
    // then the same grid to the 1-worker pool.
    std::vector<PendingRun> par, ser;
    for (const auto &[label, pol] : policies) {
        par.push_back(runAllAsync(label, SystemConfig::table3(pol),
                                  KernelScale::Tiny, {}, parallel));
        ser.push_back(runAllAsync(label, SystemConfig::table3(pol),
                                  KernelScale::Tiny, {}, serial));
    }
    for (size_t i = 0; i < policies.size(); i++) {
        const PolicyRun p = par[i].get();
        const PolicyRun s = ser[i].get();
        ASSERT_EQ(p.stats.size(), s.stats.size());
        for (const auto &[name, ps] : p.stats) {
            EXPECT_EQ(ps.fingerprint(), s.stats.at(name).fingerprint())
                    << policies[i].first << "/" << name;
        }
    }
}

} // namespace
} // namespace dws
