/**
 * @file
 * Unit tests for the smaller components: masks, event queue, RNG,
 * scheduler, warp-split table, slip controller, energy model and
 * statistics helpers.
 */

#include <gtest/gtest.h>

#include <optional>

#include "energy/energy.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "wpu/mask.hh"
#include "wpu/scheduler.hh"
#include "wpu/slip.hh"
#include "wpu/wst.hh"

namespace dws {
namespace {

// --- masks -----------------------------------------------------------

TEST(Mask, Basics)
{
    EXPECT_EQ(fullMask(4), 0xfu);
    EXPECT_EQ(fullMask(64), ~ThreadMask(0));
    EXPECT_EQ(laneBit(3), 0x8u);
    EXPECT_EQ(popcount(0xf0u), 4);
    EXPECT_EQ(lowestLane(0x8u), 3);
    EXPECT_EQ(maskToString(0b101, 4), "1010");
}

TEST(Mask, LaneIteration)
{
    std::vector<int> lanes;
    for (int lane : Lanes(0b10110))
        lanes.push_back(lane);
    EXPECT_EQ(lanes, (std::vector<int>{1, 2, 4}));
    for (int lane : Lanes(0))
        FAIL() << "empty mask iterated lane " << lane;
}

// --- event queue -----------------------------------------------------

/** Records delivered events; can chain-schedule one more on receipt. */
struct RecordingTarget : EventTarget
{
    EventQueue *q = nullptr;
    std::vector<SimEvent> got;
    /** If set, scheduled (once) when the first event arrives. */
    std::optional<SimEvent> chained;

    void
    onSimEvent(const SimEvent &ev) override
    {
        got.push_back(ev);
        if (chained) {
            q->schedule(*chained);
            chained.reset();
        }
    }
};

TEST(EventQueue, FiresInCycleThenFifoOrder)
{
    EventQueue q;
    RecordingTarget t;
    q.bindWpu(0, &t);
    q.schedule(SimEvent{.when = 10, .kind = EventKind::WakeGroup,
                        .wpu = 0, .group = 1});
    q.schedule(SimEvent{.when = 5, .kind = EventKind::WakeGroup,
                        .wpu = 0, .group = 2});
    q.schedule(SimEvent{.when = 10, .kind = EventKind::WakeRetry,
                        .wpu = 0, .group = 3});
    EXPECT_EQ(q.nextEventCycle(), 5u);
    q.runUntil(4);
    EXPECT_TRUE(t.got.empty());
    q.runUntil(10);
    ASSERT_EQ(t.got.size(), 3u);
    // Cycle order first, insertion order within a cycle.
    EXPECT_EQ(t.got[0].group, 2);
    EXPECT_EQ(t.got[1].group, 1);
    EXPECT_EQ(t.got[2].group, 3);
    EXPECT_EQ(t.got[2].kind, EventKind::WakeRetry);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, HandlerMaySchedule)
{
    EventQueue q;
    RecordingTarget t;
    t.q = &q;
    t.chained = SimEvent{.when = 2, .kind = EventKind::WakeGroup,
                         .wpu = 0, .group = 7};
    q.bindWpu(0, &t);
    q.schedule(SimEvent{.when = 1, .kind = EventKind::WakeGroup,
                        .wpu = 0, .group = 6});
    q.runUntil(5);
    ASSERT_EQ(t.got.size(), 2u);
    EXPECT_EQ(t.got[1].group, 7);
}

TEST(EventQueue, RoutesByKindAndWpu)
{
    EventQueue q;
    RecordingTarget wpu0, wpu1, memt;
    q.bindWpu(0, &wpu0);
    q.bindWpu(1, &wpu1);
    q.bindMem(&memt);
    q.schedule(SimEvent{.when = 1, .kind = EventKind::WakeGroup,
                        .wpu = 1, .group = 4, .lanes = 0xf0});
    q.schedule(SimEvent{.when = 1, .kind = EventKind::L1MshrRelease,
                        .wpu = 0, .line = 0x100});
    q.schedule(SimEvent{.when = 1, .kind = EventKind::L2MshrRelease,
                        .line = 0x200});
    q.runUntil(1);
    EXPECT_TRUE(wpu0.got.empty());
    ASSERT_EQ(wpu1.got.size(), 1u);
    EXPECT_EQ(wpu1.got[0].lanes, 0xf0u);
    ASSERT_EQ(memt.got.size(), 2u);
    EXPECT_EQ(memt.got[0].line, 0x100u);
    EXPECT_EQ(memt.got[1].line, 0x200u);
}

TEST(EventQueueDeathTest, UnboundTargetPanics)
{
    EventQueue q;
    q.schedule(SimEvent{.when = 1, .kind = EventKind::WakeGroup,
                        .wpu = 3, .group = 0});
    EXPECT_DEATH(q.runUntil(1), "no bound target");
}

// --- rng --------------------------------------------------------------

TEST(Rng, DeterministicAndSeedSensitive)
{
    Rng a(1), b(1), c(2);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, RangeBounds)
{
    Rng r(3);
    for (int i = 0; i < 1000; i++) {
        const std::int64_t v = r.nextRange(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
    EXPECT_EQ(r.nextBounded(0), 0u);
}

// --- scheduler --------------------------------------------------------

SimdGroup
mkGroup(GroupId id, WarpId warp)
{
    SimdGroup g;
    g.id = id;
    g.warp = warp;
    g.mask = 1;
    g.state = GroupState::Ready;
    return g;
}

TEST(Scheduler, SlotCapacityAndQueue)
{
    Scheduler s(2);
    SimdGroup a = mkGroup(0, 0), b = mkGroup(1, 0), c = mkGroup(2, 1);
    s.requestSlot(&a);
    s.requestSlot(&b);
    s.requestSlot(&c);
    EXPECT_TRUE(a.hasSlot);
    EXPECT_TRUE(b.hasSlot);
    EXPECT_FALSE(c.hasSlot); // queued
    s.releaseSlot(&a);
    EXPECT_TRUE(c.hasSlot); // granted from queue
    EXPECT_EQ(s.slotsUsed(), 2);
}

TEST(Scheduler, RoundRobinAcrossGroups)
{
    Scheduler s(4);
    SimdGroup a = mkGroup(0, 0), b = mkGroup(1, 1), c = mkGroup(2, 2);
    std::vector<SimdGroup *> groups{&a, &b, &c};
    for (auto *g : groups)
        s.requestSlot(g);
    SimdGroup *p1 = s.pick(0);
    SimdGroup *p2 = s.pick(0);
    SimdGroup *p3 = s.pick(0);
    SimdGroup *p4 = s.pick(0);
    EXPECT_EQ(p1, &a);
    EXPECT_EQ(p2, &b);
    EXPECT_EQ(p3, &c);
    EXPECT_EQ(p4, &a); // wrapped
}

TEST(Scheduler, SkipsUnissuable)
{
    Scheduler s(4);
    SimdGroup a = mkGroup(0, 0), b = mkGroup(1, 1);
    s.requestSlot(&a);
    s.requestSlot(&b);
    a.state = GroupState::WaitMem;
    s.updateReady(&a); // direct state write: restore the list invariant
    EXPECT_EQ(s.pick(0), &b);
    b.readyAt = 10; // still Ready (listed), just not issuable yet
    EXPECT_EQ(s.pick(0), nullptr);
    EXPECT_EQ(s.pick(10), &b);
}

TEST(Scheduler, DeadGroupsDroppedFromQueue)
{
    Scheduler s(1);
    SimdGroup a = mkGroup(0, 0), b = mkGroup(1, 0);
    s.requestSlot(&a);
    s.requestSlot(&b);
    b.state = GroupState::Dead;
    s.dequeue(b.id);
    s.releaseSlot(&a);
    EXPECT_FALSE(b.hasSlot);
    EXPECT_EQ(s.slotsUsed(), 0);
}

TEST(Scheduler, QueueAccountingStaysConsistent)
{
    // The queue is one deque of pointers (previously an id-deque plus
    // a parallel pointer vector that could desync): repeated requests
    // never duplicate an entry, dequeue preserves FIFO order of the
    // others, and grants skip groups that died while queued.
    Scheduler s(1);
    SimdGroup a = mkGroup(0, 0), b = mkGroup(1, 0), c = mkGroup(2, 1),
              d = mkGroup(3, 1);
    s.requestSlot(&a);
    s.requestSlot(&b);
    s.requestSlot(&b); // duplicate request: still queued once
    s.requestSlot(&c);
    s.requestSlot(&d);
    EXPECT_TRUE(s.isQueued(b.id));
    EXPECT_TRUE(s.isQueued(c.id));

    s.dequeue(c.id); // remove from the middle
    EXPECT_FALSE(s.isQueued(c.id));

    b.state = GroupState::Dead; // dies while queued, without dequeue
    s.releaseSlot(&a);
    // b skipped (dead), c dequeued, so d gets the slot.
    EXPECT_FALSE(b.hasSlot);
    EXPECT_FALSE(c.hasSlot);
    EXPECT_TRUE(d.hasSlot);
    EXPECT_EQ(s.slotsUsed(), 1);
    EXPECT_FALSE(s.isQueued(b.id));
    EXPECT_FALSE(s.isQueued(d.id));
}

TEST(Scheduler, ReleaseWithoutSlotIsANoOp)
{
    Scheduler s(2);
    SimdGroup a = mkGroup(0, 0);
    s.releaseSlot(&a); // never held a slot
    EXPECT_EQ(s.slotsUsed(), 0);
}

TEST(SchedulerDeathTest, SlotAccountingUnderflowPanics)
{
    // A group whose slot flag desyncs from the scheduler's counter is
    // a simulator bug: releasing it must panic, not underflow.
    Scheduler s(2);
    SimdGroup a = mkGroup(0, 0);
    a.hasSlot = true; // forged: the scheduler never granted it
    EXPECT_DEATH(s.releaseSlot(&a), "underflow");
}

// --- warp-split table --------------------------------------------------

TEST(Wst, CapacityAccounting)
{
    WarpSplitTable wst(3, 2);
    wst.addGroup(0); // root warp 0
    wst.addGroup(1); // root warp 1
    EXPECT_EQ(wst.inUse(), 0); // undivided warps use no entries
    EXPECT_TRUE(wst.canSubdivide(0));
    wst.addGroup(0); // warp 0 now divided: 2 entries
    EXPECT_EQ(wst.inUse(), 2);
    EXPECT_TRUE(wst.canSubdivide(0));  // 2 + 1 <= 3
    EXPECT_FALSE(wst.canSubdivide(1)); // 2 + 2 > 3
    wst.addGroup(0);
    EXPECT_EQ(wst.inUse(), 3);
    EXPECT_FALSE(wst.canSubdivide(0)); // 3 + 1 > 3
    wst.removeGroup(0);
    wst.removeGroup(0);
    EXPECT_EQ(wst.inUse(), 0);
    EXPECT_EQ(wst.peakUse, 3u);
}

TEST(Wst, ParkedSplitsHoldEntries)
{
    WarpSplitTable wst(4, 1);
    wst.addGroup(0);
    wst.addGroup(0); // divided: 2 entries
    // One split arrives at a barrier: still occupies its entry.
    wst.removeGroup(0);
    wst.addParked(0);
    EXPECT_EQ(wst.inUse(), 2);
    EXPECT_TRUE(wst.canSubdivide(0)); // 2 + 1 <= 4
    wst.addParked(0);
    wst.removeGroup(0);
    EXPECT_EQ(wst.inUse(), 2); // 0 running + 2 parked
    wst.removeParked(0, 2);
    wst.addGroup(0); // merged group resumes
    EXPECT_EQ(wst.inUse(), 0);
}

// --- slip controller ----------------------------------------------------

TEST(SlipController, ThresholdAdaptation)
{
    PolicyConfig pol = PolicyConfig::adaptiveSlip();
    SlipController ctl(pol, 16);
    const int initial = ctl.maxDivergence();
    EXPECT_GT(initial, 0);
    // Memory-bound interval: threshold rises.
    ctl.adapt(10'000, 80'000, 100'000);
    EXPECT_EQ(ctl.maxDivergence(), initial + 1);
    // Compute-bound intervals: threshold falls back, then below.
    ctl.adapt(60'000, 10'000, 100'000);
    EXPECT_EQ(ctl.maxDivergence(), initial);
    ctl.adapt(60'000, 10'000, 100'000);
    EXPECT_EQ(ctl.maxDivergence(), initial - 1);
    // Saturates at the SIMD width.
    for (int i = 0; i < 40; i++)
        ctl.adapt(0, 100'000, 100'000);
    EXPECT_EQ(ctl.maxDivergence(), 16);
    // And at zero.
    for (int i = 0; i < 40; i++)
        ctl.adapt(60'000, 0, 100'000);
    EXPECT_EQ(ctl.maxDivergence(), 0);
    EXPECT_FALSE(ctl.maySlip(0, 1));
}

TEST(SlipController, MaySlipCountsSuspended)
{
    PolicyConfig pol = PolicyConfig::adaptiveSlip();
    SlipController ctl(pol, 16); // threshold starts at 8
    EXPECT_TRUE(ctl.maySlip(0, 8));
    EXPECT_FALSE(ctl.maySlip(0, 9));
    EXPECT_TRUE(ctl.maySlip(6, 2));
    EXPECT_FALSE(ctl.maySlip(6, 3));
}

// --- energy ------------------------------------------------------------

TEST(Energy, LeakageScalesWithCycles)
{
    SystemConfig cfg;
    RunStats a;
    a.cycles = 1000;
    a.wpus.resize(static_cast<size_t>(cfg.numWpus));
    RunStats b = a;
    b.cycles = 2000;
    const EnergyBreakdown ea = computeEnergy(a, cfg);
    const EnergyBreakdown eb = computeEnergy(b, cfg);
    EXPECT_DOUBLE_EQ(eb.leakage, 2.0 * ea.leakage);
}

TEST(Energy, DynamicScalesWithActivity)
{
    SystemConfig cfg;
    RunStats a;
    a.cycles = 1000;
    a.wpus.resize(static_cast<size_t>(cfg.numWpus));
    a.wpus[0].issuedInstrs = 100;
    a.wpus[0].scalarInstrs = 1600;
    RunStats b = a;
    b.wpus[0].issuedInstrs = 200;
    b.wpus[0].scalarInstrs = 3200;
    const double pa = computeEnergy(a, cfg).pipeline;
    const double pb = computeEnergy(b, cfg).pipeline;
    EXPECT_GT(pb, pa);
    EXPECT_LT(pb, 2.0 * pa); // clock tree part is activity independent
}

TEST(Energy, DramDominatesPerEvent)
{
    SystemConfig cfg;
    EnergyParams p;
    RunStats r;
    r.cycles = 1;
    r.wpus.resize(static_cast<size_t>(cfg.numWpus));
    r.mem.dramAccesses = 10;
    const EnergyBreakdown e = computeEnergy(r, cfg, p);
    EXPECT_DOUBLE_EQ(e.dram, 10 * p.dramPerAccess);
}

// --- stats ----------------------------------------------------------------

TEST(Stats, HarmonicMean)
{
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 1.0}), 1.0);
    EXPECT_DOUBLE_EQ(harmonicMean({2.0, 2.0}), 2.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
    EXPECT_EQ(harmonicMean({}), 0.0);
}

TEST(Stats, WidthAndStallFractions)
{
    WpuStats w;
    w.issuedInstrs = 10;
    w.scalarInstrs = 80;
    w.activeCycles = 40;
    w.memStallCycles = 40;
    w.otherStallCycles = 20;
    w.idleCycles = 100;
    EXPECT_DOUBLE_EQ(w.avgSimdWidth(), 8.0);
    EXPECT_DOUBLE_EQ(w.memStallFrac(), 0.4); // idle excluded
    EXPECT_EQ(w.totalCycles(), 200u);
}

TEST(Stats, RunAggregation)
{
    RunStats r;
    r.cycles = 100;
    r.wpus.resize(2);
    r.wpus[0].issuedInstrs = 10;
    r.wpus[0].scalarInstrs = 100;
    r.wpus[1].issuedInstrs = 30;
    r.wpus[1].scalarInstrs = 60;
    EXPECT_EQ(r.totalScalarInstrs(), 160u);
    EXPECT_EQ(r.totalIssuedInstrs(), 40u);
    EXPECT_DOUBLE_EQ(r.avgSimdWidth(), 4.0);
    EXPECT_FALSE(r.summary().empty());
}

} // namespace
} // namespace dws
