/**
 * @file
 * Tests for the harness layer: the System simulation loop (determinism,
 * fast-forward), the one-call runner, sweep helpers, table rendering
 * and bench-flag parsing.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "harness/sweep.hh"
#include "harness/table.hh"
#include "test_util.hh"

namespace dws {
namespace {

TEST(System, DeterministicAcrossRuns)
{
    // The simulator must be bit-for-bit reproducible: identical stats
    // for identical configurations.
    auto runOnce = [] {
        SystemConfig cfg = SystemConfig::table3(PolicyConfig::reviveSplit());
        return runKernel("SVM", cfg, KernelScale::Tiny).stats;
    };
    const RunStats a = runOnce();
    const RunStats b = runOnce();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.totalScalarInstrs(), b.totalScalarInstrs());
    EXPECT_EQ(a.totalIssuedInstrs(), b.totalIssuedInstrs());
    for (size_t i = 0; i < a.wpus.size(); i++) {
        EXPECT_EQ(a.wpus[i].memStallCycles, b.wpus[i].memStallCycles);
        EXPECT_EQ(a.wpus[i].memSplits, b.wpus[i].memSplits);
        EXPECT_EQ(a.wpus[i].pcMerges, b.wpus[i].pcMerges);
    }
    EXPECT_DOUBLE_EQ(a.energyNj, b.energyNj);
}

TEST(System, SeedChangesResults)
{
    SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    const RunStats a = runKernel("Merge", cfg, KernelScale::Tiny).stats;
    cfg.seed = 999;
    const RunResult rb = runKernel("Merge", cfg, KernelScale::Tiny);
    EXPECT_TRUE(rb.valid); // different input, still correct
    EXPECT_NE(a.cycles, rb.stats.cycles);
}

TEST(System, MaxCyclesLimitTriggersFatal)
{
    // An infinite loop must hit the cycle cap and exit with the
    // cycle-limit outcome code. The builder now rejects halt-free
    // programs, so construct the Program directly.
    std::vector<Instr> code{
        Instr{.op = Op::Addi, .rd = 2, .ra = 2, .imm = 1},
        Instr{.op = Op::Jmp, .target = 0}};
    SystemConfig cfg = testConfig(4, 1, 1);
    cfg.maxCycles = 5000;
    TestKernel k(Program(code, "spin"));
    EXPECT_EXIT(
            {
                System sys(cfg, k);
                sys.run();
            },
            ::testing::ExitedWithCode(exitCodeFor(SimOutcome::CycleLimit)),
            "cycle-limit");
}

TEST(System, CycleCountIndependentOfEventBatching)
{
    // The fast-forward optimization (skipping to the next event when
    // every WPU is stalled) must not change the cycle count of a
    // memory-heavy run; we check a proxy invariant: per-WPU accounted
    // cycles always equal the run length.
    SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    const RunStats s = runKernel("Filter", cfg, KernelScale::Tiny).stats;
    for (const auto &w : s.wpus)
        EXPECT_EQ(w.totalCycles(), s.cycles);
}

TEST(Runner, ValidatesAndNames)
{
    SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    const RunResult r = runKernel("SVM", cfg, KernelScale::Tiny);
    EXPECT_TRUE(r.valid);
    EXPECT_EQ(r.kernel, "SVM");
    EXPECT_EQ(r.policy, "Conv");
}

TEST(Runner, SpeedupHelper)
{
    RunStats a, b;
    a.cycles = 2000;
    b.cycles = 1000;
    EXPECT_DOUBLE_EQ(speedup(a, b), 2.0);
    EXPECT_DOUBLE_EQ(speedup(b, a), 0.5);
}

TEST(Sweep, RunAllAndHmean)
{
    const SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    const PolicyRun run = runAll("conv", cfg, KernelScale::Tiny,
                                 {"SVM", "Short"});
    EXPECT_EQ(run.stats.size(), 2u);
    EXPECT_TRUE(run.stats.count("SVM"));
    EXPECT_TRUE(run.stats.count("Short"));
    // Self-speedup is exactly 1.
    EXPECT_DOUBLE_EQ(hmeanSpeedup(run, run), 1.0);
}

TEST(Sweep, ParseBenchArgs)
{
    const char *argv1[] = {"prog", "--fast", "--bench", "FFT",
                           "--bench", "LU"};
    const BenchOptions a = parseBenchArgs(
            6, const_cast<char **>(argv1), KernelScale::Default);
    EXPECT_EQ(a.scale, KernelScale::Tiny);
    EXPECT_EQ(a.benchmarks,
              (std::vector<std::string>{"FFT", "LU"}));

    const char *argv2[] = {"prog", "--full"};
    const BenchOptions b = parseBenchArgs(
            2, const_cast<char **>(argv2), KernelScale::Tiny);
    EXPECT_EQ(b.scale, KernelScale::Default);
    EXPECT_TRUE(b.benchmarks.empty());
    EXPECT_EQ(b.jobs, 0); // defaulted: executor picks the pool size
    EXPECT_TRUE(b.jsonPath.empty());
}

TEST(Sweep, ParseBenchArgsJobsAndJson)
{
    const char *argv[] = {"prog", "--jobs", "3", "--json", "out.json"};
    const BenchOptions o = parseBenchArgs(
            5, const_cast<char **>(argv), KernelScale::Tiny);
    EXPECT_EQ(o.jobs, 3);
    EXPECT_EQ(o.jsonPath, "out.json");
}

TEST(Sweep, ParseBenchArgsRejectsUnknownFlag)
{
    const char *argv[] = {"prog", "--benhc", "FFT"};
    EXPECT_EXIT(parseBenchArgs(3, const_cast<char **>(argv)),
                ::testing::ExitedWithCode(1), "unknown argument");
}

TEST(Sweep, ParseBenchArgsRejectsUnknownBenchmark)
{
    // A typo'd benchmark used to be accepted silently and only fail
    // deep inside runKernel.
    const char *argv[] = {"prog", "--bench", "FTT"};
    EXPECT_EXIT(parseBenchArgs(3, const_cast<char **>(argv)),
                ::testing::ExitedWithCode(1), "unknown benchmark");
}

TEST(Sweep, ParseBenchArgsRejectsBadJobs)
{
    const char *argv[] = {"prog", "--jobs", "0"};
    EXPECT_EXIT(parseBenchArgs(3, const_cast<char **>(argv)),
                ::testing::ExitedWithCode(2), "positive integer");
    const char *argv3[] = {"prog", "--jobs", "4x"};
    EXPECT_EXIT(parseBenchArgs(3, const_cast<char **>(argv3)),
                ::testing::ExitedWithCode(2), "positive integer");
    const char *argv2[] = {"prog", "--jobs"};
    EXPECT_EXIT(parseBenchArgs(2, const_cast<char **>(argv2)),
                ::testing::ExitedWithCode(1), "requires");
}

TEST(Table, AlignsColumnsAndRules)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"a", "1.00"});
    t.numericRow("longer-label", {2.5, 3.25}, 2);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("2.50"), std::string::npos);
    EXPECT_NE(out.find("3.25"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    // Each line ends without trailing misalignment (rule line spans
    // the header width).
    EXPECT_EQ(fmt(1.23456, 3), "1.235");
}

TEST(KernelRegistry, AllEightPresent)
{
    EXPECT_EQ(kernelNames().size(), 8u);
    KernelParams kp;
    for (const auto &n : kernelNames()) {
        auto k = makeKernel(n, kp);
        ASSERT_NE(k, nullptr) << n;
        EXPECT_EQ(k->name(), n);
        EXPECT_FALSE(k->description().empty());
        EXPECT_GT(k->memBytes(), 0u);
        const Program p = k->buildProgram();
        EXPECT_GT(p.size(), 10);
    }
    EXPECT_EQ(makeKernel("NoSuchKernel", kp), nullptr);
}

TEST(KernelRegistry, TinyIsSmallerThanDefault)
{
    KernelParams tiny;
    tiny.scale = KernelScale::Tiny;
    KernelParams dflt;
    dflt.scale = KernelScale::Default;
    for (const auto &n : kernelNames()) {
        EXPECT_LE(makeKernel(n, tiny)->memBytes(),
                  makeKernel(n, dflt)->memBytes())
                << n;
    }
}

} // namespace
} // namespace dws
