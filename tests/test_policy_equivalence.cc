/**
 * @file
 * Property-based policy-equivalence fuzzing.
 *
 * Dynamic warp subdivision, by design, "merely changes the ordering of
 * execution for threads within the same warp" (paper Section 5.4): it
 * must never change architectural results. This test generates random
 * structured kernels (loops, nested data-dependent diamonds, gathers,
 * scatters) and checks that every divergence policy produces memory
 * contents identical to the conventional baseline, across several
 * machine shapes.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace dws {
namespace {

constexpr int kTableWords = 2048;
constexpr int kOutWords = 512;

/** Generate a random structured kernel from a seed. */
Program
randomKernel(std::uint64_t seed)
{
    Rng rng(seed * 2654435761u + 1);
    KernelBuilder b;

    // r0 tid, r1 nthreads, r2 idx, r3 step, r4 acc, r5.. temps,
    // r30 zero.
    const int steps = static_cast<int>(rng.nextRange(4, 24));
    b.muli(2, 0, static_cast<std::int64_t>(rng.nextRange(3, 97)));
    b.movi(5, kTableWords);
    b.rem(2, 2, 5);
    b.movi(3, 0);
    b.addi(4, 0, static_cast<std::int64_t>(rng.nextRange(0, 9)));

    auto loop = b.newLabel();
    auto done = b.newLabel();
    b.bind(loop);
    b.slti(6, 3, steps);
    b.seq(6, 6, 30);
    b.br(6, done);

    const int actions = static_cast<int>(rng.nextRange(2, 5));
    for (int a = 0; a < actions; a++) {
        switch (rng.nextBounded(5)) {
          case 0: { // gather + accumulate
            b.muli(7, 2, kWordBytes);
            b.ld(8, 7, 0);
            b.add(4, 4, 8);
            b.movi(5, kTableWords);
            b.rem(2, 8, 5);
            break;
          }
          case 1: { // data-dependent diamond
            auto odd = b.newLabel();
            auto join = b.newLabel();
            b.andi(9, 4, rng.nextRange(1, 3));
            b.br(9, odd);
            b.addi(4, 4, rng.nextRange(1, 50));
            b.jmp(join);
            b.bind(odd);
            b.muli(4, 4, 3);
            b.shri(4, 4, 1);
            b.bind(join);
            break;
          }
          case 2: { // nested diamond
            auto o1 = b.newLabel();
            auto j1 = b.newLabel();
            auto o2 = b.newLabel();
            auto j2 = b.newLabel();
            b.andi(9, 2, 1);
            b.br(9, o1);
            b.andi(10, 4, 1);
            b.br(10, o2);
            b.addi(4, 4, 7);
            b.jmp(j2);
            b.bind(o2);
            b.addi(4, 4, 11);
            b.bind(j2);
            b.addi(4, 4, 1);
            b.jmp(j1);
            b.bind(o1);
            b.xor_(4, 4, 2);
            b.bind(j1);
            b.add(4, 4, 2);
            break;
          }
          case 3: { // scatter store to a thread-private slot
            b.movi(5, kOutWords);
            b.rem(11, 0, 5);
            b.muli(11, 11, kWordBytes);
            b.st(11, 4, kTableWords * kWordBytes);
            break;
          }
          default: { // pure ALU churn
            b.muli(4, 4, rng.nextRange(1, 5));
            b.addi(4, 4, rng.nextRange(-20, 20));
            b.andi(4, 4, 0xffffff);
            break;
          }
        }
    }
    b.addi(3, 3, 1);
    b.jmp(loop);
    b.bind(done);
    // Final per-thread result.
    b.muli(12, 0, kWordBytes);
    b.st(12, 4, (kTableWords + kOutWords) * kWordBytes);
    b.halt();
    return b.build("fuzz" + std::to_string(seed));
}

TestKernel::InitFn
fuzzInit(std::uint64_t seed)
{
    return [seed](Memory &m) {
        Rng rng(seed + 77);
        for (int i = 0; i < kTableWords; i++)
            m.writeWord(static_cast<std::uint64_t>(i),
                        rng.nextRange(0, kTableWords * 8));
    };
}

std::uint64_t
memBytesNeeded(int threads)
{
    return static_cast<std::uint64_t>(kTableWords + kOutWords + threads +
                                      64) * kWordBytes;
}

/** Snapshot of the architecturally visible memory after a run. */
std::vector<std::int64_t>
runAndSnapshot(std::uint64_t seed, const PolicyConfig &pol)
{
    SystemConfig cfg = testConfig(8, 2, 2);
    cfg.policy = pol;
    // Small, low-associativity cache maximizes divergence events.
    cfg.wpu.dcache.sizeBytes = 2 * 1024;
    cfg.wpu.dcache.assoc = 2;
    TestKernel k(randomKernel(seed),
                 memBytesNeeded(cfg.totalThreads()), fuzzInit(seed));
    System sys(cfg, k);
    sys.run();
    std::vector<std::int64_t> snap;
    const std::uint64_t words = memBytesNeeded(cfg.totalThreads()) /
                                kWordBytes;
    snap.reserve(words);
    for (std::uint64_t i = 0; i < words; i++)
        snap.push_back(sys.memory().readWord(i));
    return snap;
}

class PolicyEquivalence : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(PolicyEquivalence, AllPoliciesMatchConv)
{
    const std::uint64_t seed = GetParam();
    const auto golden = runAndSnapshot(seed, PolicyConfig::conv());
    const std::vector<PolicyConfig> policies = {
        PolicyConfig::branchOnlyStack(),
        PolicyConfig::branchOnly(),
        PolicyConfig::memOnlyBranchLimited(SplitScheme::Aggressive),
        PolicyConfig::memOnlyBranchLimited(SplitScheme::Revive),
        PolicyConfig::reviveMemOnly(),
        PolicyConfig::dws(SplitScheme::Aggressive),
        PolicyConfig::dws(SplitScheme::Lazy),
        PolicyConfig::reviveSplit(),
        PolicyConfig::adaptiveSlip(),
        PolicyConfig::slipBranchBypassCfg(),
    };
    for (const auto &pol : policies) {
        const auto got = runAndSnapshot(seed, pol);
        ASSERT_EQ(got.size(), golden.size());
        for (size_t i = 0; i < got.size(); i++) {
            ASSERT_EQ(got[i], golden[i])
                    << "seed " << seed << " policy " << pol.name()
                    << " word " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, PolicyEquivalence,
                         ::testing::Range<std::uint64_t>(1, 21));

/** The same property across machine shapes for one seed. */
class ShapeEquivalence
    : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(ShapeEquivalence, DwsMatchesConvAcrossShapes)
{
    const auto [width, warps] = GetParam();
    auto snapshot = [&](const PolicyConfig &pol) {
        SystemConfig cfg = testConfig(width, warps, 2);
        cfg.policy = pol;
        cfg.wpu.dcache.sizeBytes = 2 * 1024;
        cfg.wpu.dcache.assoc = 2;
        cfg.wpu.dcache.banks = width;
        TestKernel k(randomKernel(5),
                     memBytesNeeded(cfg.totalThreads()), fuzzInit(5));
        System sys(cfg, k);
        sys.run();
        std::vector<std::int64_t> snap;
        const std::uint64_t words =
                memBytesNeeded(cfg.totalThreads()) / kWordBytes;
        for (std::uint64_t i = 0; i < words; i++)
            snap.push_back(sys.memory().readWord(i));
        return snap;
    };
    EXPECT_EQ(snapshot(PolicyConfig::conv()),
              snapshot(PolicyConfig::reviveSplit()));
    EXPECT_EQ(snapshot(PolicyConfig::conv()),
              snapshot(PolicyConfig::slipBranchBypassCfg()));
}

INSTANTIATE_TEST_SUITE_P(
        Shapes, ShapeEquivalence,
        ::testing::Values(std::make_pair(2, 1), std::make_pair(4, 2),
                          std::make_pair(8, 4), std::make_pair(16, 2),
                          std::make_pair(32, 1)));

} // namespace
} // namespace dws
