/**
 * @file
 * Tests for the sweep service (src/serve/, DESIGN.md §16): canonical
 * config cache keys, the content-addressed disk result cache, the
 * binary frame protocol, the daemon over a real Unix-domain socket,
 * the executor's serve mode, and the journal's config-hash
 * invalidation.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "harness/executor.hh"
#include "harness/runner.hh"
#include "serve/cache_key.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "serve/server.hh"
#include "sim/stats.hh"

namespace fs = std::filesystem;

namespace dws {
namespace {

/** A unique scratch directory, removed on destruction. */
struct TempDir
{
    TempDir()
    {
        char tmpl[] = "/tmp/dws_serve_test_XXXXXX";
        path = mkdtemp(tmpl);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string path;
};

/** Connect a raw fd to a Unix-domain socket (for malformed input). */
int
rawConnect(const std::string &socketPath)
{
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  socketPath.c_str());
    if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

// --------------------------------------------------------------------
// Canonical config cache keys
// --------------------------------------------------------------------

TEST(CacheKey, RoundTripIsCanonical)
{
    const SystemConfig cfg =
            SystemConfig::table3(PolicyConfig::reviveSplit());
    SystemConfig back;
    std::string err;
    ASSERT_TRUE(SystemConfig::parseCacheKey(cfg.cacheKey(), back, err))
            << err;
    EXPECT_EQ(back.cacheKey(), cfg.cacheKey());
    EXPECT_EQ(back.cacheKeyHash(), cfg.cacheKeyHash());
}

TEST(CacheKey, EqualConfigsHashEqual)
{
    const SystemConfig a = SystemConfig::table3(PolicyConfig::conv());
    const SystemConfig b = SystemConfig::table3(PolicyConfig::conv());
    EXPECT_EQ(a.cacheKey(), b.cacheKey());
    EXPECT_EQ(a.cacheKeyHash(), b.cacheKeyHash());
}

TEST(CacheKey, DefaultAndExplicitHierarchySerializeIdentically)
{
    // A legacy default machine and the same machine spelled as an
    // explicit HierarchySpec are the same cell: the key serializes the
    // *expanded* hierarchy, not the input spelling.
    const SystemConfig legacy =
            SystemConfig::table3(PolicyConfig::conv());
    SystemConfig spelled = legacy;
    spelled.applyHierarchy(HierarchySpec::table3());
    EXPECT_EQ(legacy.cacheKey(), spelled.cacheKey());
}

TEST(CacheKey, EverySingleFieldChangeChangesTheHash)
{
    const SystemConfig base =
            SystemConfig::table3(PolicyConfig::reviveSplit());
    const std::uint64_t h0 = base.cacheKeyHash();

    std::vector<SystemConfig> variants;
    auto var = [&]() -> SystemConfig & {
        variants.push_back(base);
        return variants.back();
    };
    var().numWpus = 8;
    var().wpu.simdWidth = 8;
    var().wpu.numWarps = 8;
    var().wpu.schedSlots = 16;
    var().wpu.wstEntries = 32;
    var().wpu.icache.sizeBytes *= 2;
    var().wpu.dcache.assoc = 4;
    var().wpu.dcache.mshrBanks = 4;
    var().mem.l2.sizeBytes *= 2;
    var().mem.l2.hitLatency += 5;
    var().mem.xbarLatency += 1;
    var().mem.dramLatency += 50;
    var().mem.dramBytesPerCycle *= 2.0;
    var().policy.splitOnBranch = !base.policy.splitOnBranch;
    var().policy.splitScheme = SplitScheme::Lazy;
    var().policy.memReconv = MemReconv::BranchLimited;
    var().policy.pcReconv = !base.policy.pcReconv;
    var().policy.minSplitWidth += 1;
    var().policy.subdivMaxPostBlock += 1;
    var().seed += 1;
    var().maxCycles = 123456;
    var().faultSpec = "fault-spec-sentinel";
    // Nested hierarchy levels count too: append an L3 and mutate deep
    // LevelSpec fields of an explicit hierarchy.
    var().applyHierarchy(HierarchySpec::withL3(8u << 20, 16, 60));
    {
        // += 2, not += 1: an explicit hierarchy with linkLatency + 1
        // would (correctly) canonicalize to the same machine as the
        // legacy xbarLatency + 1 variant above.
        SystemConfig &v = var();
        v.applyHierarchy(HierarchySpec::table3());
        v.mem.hier.levels[0].linkLatency += 2;
    }
    {
        SystemConfig &v = var();
        v.applyHierarchy(HierarchySpec::table3());
        v.mem.hier.levels[0].slices = 2;
    }

    std::set<std::uint64_t> seen{h0};
    for (std::size_t i = 0; i < variants.size(); i++) {
        const std::uint64_t h = variants[i].cacheKeyHash();
        EXPECT_NE(h, h0) << "variant " << i << " did not change the key";
        EXPECT_TRUE(seen.insert(h).second)
                << "variant " << i << " collided with another variant";
    }
}

TEST(CacheKey, ObservationallyPureKnobsDoNotChangeTheKey)
{
    // Tracing and checking knobs never change simulation results, so
    // they must not fragment the cache (and --serve refuses --trace
    // anyway, since trace output cannot be served from a cache).
    const SystemConfig base = SystemConfig::table3(PolicyConfig::conv());
    SystemConfig traced = base;
    traced.traceMode = 3;
    traced.traceOut = "trace.dwst";
    traced.checkInvariants = 64;
    traced.checkOracle = true;
    EXPECT_EQ(base.cacheKey(), traced.cacheKey());
}

TEST(CacheKey, ParseRejectsGarbage)
{
    SystemConfig out;
    std::string err;
    EXPECT_FALSE(SystemConfig::parseCacheKey("", out, err));
    EXPECT_FALSE(SystemConfig::parseCacheKey("not a key", out, err));
    EXPECT_FALSE(SystemConfig::parseCacheKey("dwscfg v1\nwpus=x\n", out,
                                             err));
    // A truncated key (cut inside the final line) must not parse.
    const std::string key =
            SystemConfig::table3(PolicyConfig::conv()).cacheKey();
    EXPECT_FALSE(SystemConfig::parseCacheKey(
            key.substr(0, key.size() - 3), out, err));
}

TEST(CacheKey, KernelIdentityCoversBuiltinsAndIrFiles)
{
    std::string err;
    EXPECT_EQ(kernelIdentity("FFT", err), "builtin:FFT");
    EXPECT_EQ(kernelIdentity("NoSuchKernel", err), "");
    EXPECT_FALSE(err.empty());

    TempDir tmp;
    const std::string irPath = tmp.path + "/k.dws";
    {
        std::ofstream f(irPath);
        f << "kernel k\n";
    }
    const std::string id1 = kernelIdentity(irPath, err);
    ASSERT_EQ(id1.rfind("ir:", 0), 0u) << err;
    // Editing the file changes its identity (its cells invalidate).
    {
        std::ofstream f(irPath);
        f << "kernel k2\n";
    }
    const std::string id2 = kernelIdentity(irPath, err);
    EXPECT_NE(id1, id2);
}

TEST(CacheKey, JobConfigHashSeparatesScales)
{
    const SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    EXPECT_NE(jobConfigHash(cfg, KernelScale::Tiny),
              jobConfigHash(cfg, KernelScale::Default));
}

// --------------------------------------------------------------------
// Result cache
// --------------------------------------------------------------------

ResultCache::Entry
sampleEntry()
{
    ResultCache::Entry e;
    e.kernel = "FFT";
    e.scale = "tiny";
    e.policy = "Conv";
    e.cycles = 12345;
    e.energyNj = 6.5;
    e.wallMs = 2.25;
    e.fingerprint = RunStats{}.fingerprint();
    return e;
}

TEST(ResultCache, InsertLookupAndPersistAcrossReopen)
{
    TempDir tmp;
    const std::uint64_t key = 0xdeadbeefcafef00dull;
    {
        ResultCache cache(tmp.path + "/cache");
        std::string err;
        ASSERT_TRUE(cache.open(err)) << err;
        ResultCache::Entry miss;
        EXPECT_FALSE(cache.lookup(key, miss));
        cache.insert(key, sampleEntry());
        ResultCache::Entry hit;
        ASSERT_TRUE(cache.lookup(key, hit));
        EXPECT_EQ(hit.kernel, "FFT");
        EXPECT_EQ(hit.cycles, 12345u);
        EXPECT_DOUBLE_EQ(hit.energyNj, 6.5);
        EXPECT_EQ(hit.fingerprint, RunStats{}.fingerprint());
        EXPECT_EQ(cache.counters().hits, 1u);
        EXPECT_EQ(cache.counters().misses, 1u);
    }
    // A second cache over the same directory serves the same entry:
    // the store survives daemon restarts.
    ResultCache cache(tmp.path + "/cache");
    std::string err;
    ASSERT_TRUE(cache.open(err)) << err;
    EXPECT_EQ(cache.counters().entries, 1u);
    ResultCache::Entry hit;
    ASSERT_TRUE(cache.lookup(key, hit));
    EXPECT_EQ(hit.cycles, 12345u);
}

TEST(ResultCache, CorruptAndTruncatedEntriesAreMissesAndRemoved)
{
    TempDir tmp;
    ResultCache cache(tmp.path + "/cache");
    std::string err;
    ASSERT_TRUE(cache.open(err)) << err;
    cache.insert(1, sampleEntry());
    cache.insert(2, sampleEntry());

    // Flipped bytes: the checksum fails.
    {
        std::ofstream f(cache.entryPath(1), std::ios::trunc);
        f << "dwsrec v1\nkernel=FFT\ngarbage\nsum=0123456789abcdef\n";
    }
    ResultCache::Entry out;
    EXPECT_FALSE(cache.lookup(1, out));
    EXPECT_FALSE(fs::exists(cache.entryPath(1)));

    // Truncation: cut the file mid-body.
    {
        std::ifstream in(cache.entryPath(2), std::ios::binary);
        std::string body((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        in.close();
        std::ofstream f(cache.entryPath(2),
                        std::ios::trunc | std::ios::binary);
        f << body.substr(0, body.size() / 2);
    }
    EXPECT_FALSE(cache.lookup(2, out));
    EXPECT_EQ(cache.counters().corrupt, 2u);
    EXPECT_EQ(cache.counters().entries, 0u);

    // A re-insert repairs the slot.
    cache.insert(1, sampleEntry());
    EXPECT_TRUE(cache.lookup(1, out));
}

TEST(ResultCache, LruCapEvictsColdestEntry)
{
    TempDir tmp;
    ResultCache cache(tmp.path + "/cache", 3);
    std::string err;
    ASSERT_TRUE(cache.open(err)) << err;
    cache.insert(1, sampleEntry());
    cache.insert(2, sampleEntry());
    cache.insert(3, sampleEntry());
    ResultCache::Entry out;
    ASSERT_TRUE(cache.lookup(1, out)); // 1 becomes hottest
    cache.insert(4, sampleEntry());    // evicts 2, the coldest
    EXPECT_FALSE(fs::exists(cache.entryPath(2)));
    EXPECT_TRUE(cache.lookup(1, out));
    EXPECT_FALSE(cache.lookup(2, out));
    EXPECT_TRUE(cache.lookup(3, out));
    EXPECT_TRUE(cache.lookup(4, out));
    EXPECT_EQ(cache.counters().evicted, 1u);
    EXPECT_EQ(cache.counters().entries, 3u);
}

TEST(ResultCache, FlushRemovesEverything)
{
    TempDir tmp;
    ResultCache cache(tmp.path + "/cache");
    std::string err;
    ASSERT_TRUE(cache.open(err)) << err;
    cache.insert(1, sampleEntry());
    cache.insert(2, sampleEntry());
    EXPECT_EQ(cache.flush(), 2u);
    EXPECT_EQ(cache.counters().entries, 0u);
    ResultCache::Entry out;
    EXPECT_FALSE(cache.lookup(1, out));
}

// --------------------------------------------------------------------
// Wire format and frame protocol
// --------------------------------------------------------------------

TEST(ServeProtocol, PayloadRoundTrips)
{
    std::vector<ServeJob> jobs(2);
    jobs[0] = ServeJob{"FFT", "Conv", 0, "dwscfg v1\nwpus=4\n"};
    jobs[1] = ServeJob{"Merge", "Revive", 1, "dwscfg v1\nwpus=8\n"};
    std::vector<ServeJob> jobs2;
    ASSERT_TRUE(decodeSubmitBatch(encodeSubmitBatch(jobs), jobs2));
    ASSERT_EQ(jobs2.size(), 2u);
    EXPECT_EQ(jobs2[0].kernel, "FFT");
    EXPECT_EQ(jobs2[1].label, "Revive");
    EXPECT_EQ(jobs2[1].scale, 1);
    EXPECT_EQ(jobs2[1].configKey, "dwscfg v1\nwpus=8\n");

    std::vector<ServeResult> res(1);
    res[0].outcome = "ok";
    res[0].policy = "Conv";
    res[0].cycles = 987;
    res[0].energyNj = 1.5;
    res[0].wallMs = 0.25;
    res[0].cached = true;
    res[0].fingerprint = "fp";
    std::vector<ServeResult> res2;
    ASSERT_TRUE(decodeSubmitReply(encodeSubmitReply(res), res2));
    ASSERT_EQ(res2.size(), 1u);
    EXPECT_EQ(res2[0].cycles, 987u);
    EXPECT_TRUE(res2[0].cached);
    EXPECT_EQ(res2[0].fingerprint, "fp");

    ServeStatus st;
    st.workers = 7;
    st.batches = 3;
    st.jobs = 21;
    st.cacheDir = "/x";
    st.buildFingerprint = "bf";
    ServeStatus st2;
    ASSERT_TRUE(decodeStatusReply(encodeStatusReply(st), st2));
    EXPECT_EQ(st2.workers, 7u);
    EXPECT_EQ(st2.jobs, 21u);
    EXPECT_EQ(st2.buildFingerprint, "bf");
}

TEST(ServeProtocol, MalformedPayloadsAreRejectedNotCrashed)
{
    // A count prefix promising more records than the payload holds
    // must poison the reader, not read out of bounds.
    WireWriter w;
    w.u32(2);          // promises two jobs
    w.str("only-one"); // ...but delivers half of one
    std::vector<ServeJob> jobs;
    EXPECT_FALSE(decodeSubmitBatch(w.take(), jobs));

    WireWriter w2;
    w2.u32(1);
    w2.u32(0xffffffffu); // string length far beyond the buffer
    std::vector<ServeJob> jobs2;
    EXPECT_FALSE(decodeSubmitBatch(w2.take(), jobs2));

    // Trailing junk after a well-formed payload is rejected too.
    std::vector<std::uint8_t> ok = encodeFlushReply(5);
    ok.push_back(0x00);
    std::uint64_t removed;
    EXPECT_FALSE(decodeFlushReply(ok, removed));
}

TEST(ServeProtocol, FrameRoundTripOverSocketpair)
{
    int sv[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    ASSERT_TRUE(writeFrame(sv[0], FrameType::Error,
                           encodeError("hello")));
    ServeFrame f;
    EXPECT_EQ(readFrame(sv[1], f), FrameIo::Ok);
    EXPECT_EQ(f.type, FrameType::Error);
    std::string msg;
    ASSERT_TRUE(decodeError(f.payload, msg));
    EXPECT_EQ(msg, "hello");
    ::close(sv[0]);
    // A clean close on the frame boundary reads as Eof, not an error.
    EXPECT_EQ(readFrame(sv[1], f), FrameIo::Eof);
    ::close(sv[1]);
}

TEST(ServeProtocol, BadMagicVersionOversizedAndTruncatedFrames)
{
    // Bad magic.
    {
        int sv[2];
        ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
        const std::uint8_t junk[12] = {'J', 'U', 'N', 'K', 1, 0,
                                       1,   0,   0,   0,   0, 0};
        ASSERT_EQ(write(sv[0], junk, sizeof junk),
                  (ssize_t)sizeof junk);
        ServeFrame f;
        EXPECT_EQ(readFrame(sv[1], f), FrameIo::BadMagic);
        ::close(sv[0]);
        ::close(sv[1]);
    }
    // Version mismatch, with the peer's version reported back.
    {
        int sv[2];
        ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
        std::uint8_t hdr[12] = {0};
        hdr[0] = 'D'; hdr[1] = 'W'; hdr[2] = 'S'; hdr[3] = 'V';
        hdr[4] = 99; // version 99
        hdr[6] = 1;  // SubmitBatch
        ASSERT_EQ(write(sv[0], hdr, sizeof hdr), (ssize_t)sizeof hdr);
        ServeFrame f;
        std::uint16_t seen = 0;
        EXPECT_EQ(readFrame(sv[1], f, &seen), FrameIo::BadVersion);
        EXPECT_EQ(seen, 99);
        ::close(sv[0]);
        ::close(sv[1]);
    }
    // Oversized length prefix (v2 16-byte header; the length check
    // runs before the checksum, so a bogus checksum is fine here).
    {
        int sv[2];
        ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
        std::uint8_t hdr[kFrameHeaderBytes] = {0};
        hdr[0] = 'D'; hdr[1] = 'W'; hdr[2] = 'S'; hdr[3] = 'V';
        hdr[4] = kServeVersion;
        hdr[6] = 1;
        hdr[8] = 0xff; hdr[9] = 0xff; hdr[10] = 0xff; hdr[11] = 0xff;
        ASSERT_EQ(write(sv[0], hdr, sizeof hdr), (ssize_t)sizeof hdr);
        ServeFrame f;
        EXPECT_EQ(readFrame(sv[1], f), FrameIo::Oversized);
        ::close(sv[0]);
        ::close(sv[1]);
    }
    // Truncated: the header promises a payload, then the peer vanishes.
    {
        int sv[2];
        ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
        std::uint8_t hdr[kFrameHeaderBytes] = {0};
        hdr[0] = 'D'; hdr[1] = 'W'; hdr[2] = 'S'; hdr[3] = 'V';
        hdr[4] = kServeVersion;
        hdr[6] = 1;
        hdr[8] = 100; // 100-byte payload that never arrives
        ASSERT_EQ(write(sv[0], hdr, sizeof hdr), (ssize_t)sizeof hdr);
        ::close(sv[0]);
        ServeFrame f;
        EXPECT_EQ(readFrame(sv[1], f), FrameIo::Truncated);
        ::close(sv[1]);
    }
    // One flipped payload byte: the frame checksum must catch it —
    // corruption is *detected*, never decoded.
    {
        int sv[2];
        ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
        std::vector<std::uint8_t> wire =
                encodeFrame(FrameType::Error, encodeError("corrupt me"));
        wire[kFrameHeaderBytes + 3] ^= 0x5a;
        ASSERT_EQ(write(sv[0], wire.data(), wire.size()),
                  (ssize_t)wire.size());
        ServeFrame f;
        EXPECT_EQ(readFrame(sv[1], f), FrameIo::BadChecksum);
        ::close(sv[0]);
        ::close(sv[1]);
    }
    // A flipped header byte (the frame type) is caught too.
    {
        int sv[2];
        ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
        std::vector<std::uint8_t> wire =
                encodeFrame(FrameType::Error, encodeError("x"));
        wire[6] ^= 0x01; // type low byte, covered by the checksum
        ASSERT_EQ(write(sv[0], wire.data(), wire.size()),
                  (ssize_t)wire.size());
        ServeFrame f;
        EXPECT_EQ(readFrame(sv[1], f), FrameIo::BadChecksum);
        ::close(sv[0]);
        ::close(sv[1]);
    }
    // Truncated inside the header itself.
    {
        int sv[2];
        ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
        const std::uint8_t half[5] = {'D', 'W', 'S', 'V', 1};
        ASSERT_EQ(write(sv[0], half, sizeof half),
                  (ssize_t)sizeof half);
        ::close(sv[0]);
        ServeFrame f;
        EXPECT_EQ(readFrame(sv[1], f), FrameIo::Truncated);
        ::close(sv[1]);
    }
}

// --------------------------------------------------------------------
// The daemon over a real socket
// --------------------------------------------------------------------

/** A started daemon on a scratch socket + cache dir. */
struct DaemonFixture
{
    DaemonFixture()
    {
        ServeDaemon::Options opts;
        opts.socketPath = tmp.path + "/serve.sock";
        opts.cacheDir = tmp.path + "/cache";
        opts.jobs = 2;
        daemon = std::make_unique<ServeDaemon>(opts);
        std::string err;
        started = daemon->start(err);
        EXPECT_TRUE(started) << err;
    }
    std::string socket() const { return tmp.path + "/serve.sock"; }

    TempDir tmp;
    std::unique_ptr<ServeDaemon> daemon;
    bool started = false;
};

ServeJob
tinyJob(const std::string &kernel, const PolicyConfig &pol,
        const std::string &label)
{
    ServeJob j;
    j.kernel = kernel;
    j.label = label;
    j.scale = 0; // tiny
    j.configKey = SystemConfig::table3(pol).cacheKey();
    return j;
}

TEST(ServeDaemon, ColdMissesThenWarmHitsBitIdentical)
{
    DaemonFixture fx;
    ASSERT_TRUE(fx.started);
    ServeClient client;
    std::string err;
    ASSERT_TRUE(client.connectTo(fx.socket(), err)) << err;

    const std::vector<ServeJob> jobs = {
        tinyJob("Short", PolicyConfig::conv(), "Conv"),
        tinyJob("Short", PolicyConfig::reviveSplit(), "Revive"),
    };
    std::vector<ServeResult> cold, warm;
    ASSERT_TRUE(client.submitBatch(jobs, cold, err)) << err;
    ASSERT_EQ(cold.size(), 2u);
    for (const auto &r : cold) {
        EXPECT_TRUE(r.ok()) << r.error;
        EXPECT_FALSE(r.cached);
        EXPECT_FALSE(r.fingerprint.empty());
    }
    ASSERT_TRUE(client.submitBatch(jobs, warm, err)) << err;
    ASSERT_EQ(warm.size(), 2u);
    for (std::size_t i = 0; i < warm.size(); i++) {
        EXPECT_TRUE(warm[i].cached);
        // The warm cell is bit-identical: same fingerprint, so the
        // rebuilt RunStats is the exact original.
        EXPECT_EQ(warm[i].fingerprint, cold[i].fingerprint);
    }
    // And the fingerprint matches a local simulation of the same cell.
    const RunResult local = runKernel(
            "Short", SystemConfig::table3(PolicyConfig::conv()),
            KernelScale::Tiny);
    EXPECT_EQ(cold[0].fingerprint, local.stats.fingerprint());

    ServeCacheCounters c;
    ASSERT_TRUE(client.cacheStats(c, err)) << err;
    EXPECT_EQ(c.entries, 2u);
    EXPECT_EQ(c.hits, 2u);
    EXPECT_EQ(c.misses, 2u);
}

TEST(ServeDaemon, BadJobsGetPerJobErrorsOthersComplete)
{
    DaemonFixture fx;
    ASSERT_TRUE(fx.started);
    ServeClient client;
    std::string err;
    ASSERT_TRUE(client.connectTo(fx.socket(), err)) << err;

    std::vector<ServeJob> jobs = {
        tinyJob("Short", PolicyConfig::conv(), "Conv"),
        tinyJob("NoSuchKernel", PolicyConfig::conv(), "Bad"),
        ServeJob{"Short", "BadCfg", 0, "not a config"},
    };
    std::vector<ServeResult> res;
    ASSERT_TRUE(client.submitBatch(jobs, res, err)) << err;
    ASSERT_EQ(res.size(), 3u);
    EXPECT_TRUE(res[0].ok()) << res[0].error;
    EXPECT_FALSE(res[1].ok());
    EXPECT_NE(res[1].error.find("unknown kernel"), std::string::npos)
            << res[1].error;
    EXPECT_FALSE(res[2].ok());
    EXPECT_NE(res[2].error.find("bad config"), std::string::npos)
            << res[2].error;
}

TEST(ServeDaemon, SurvivesGarbageAndVersionMismatchConnections)
{
    DaemonFixture fx;
    ASSERT_TRUE(fx.started);
    std::string err;

    // Connection 1: pure garbage bytes, then close. The daemon drops
    // only this connection.
    {
        const int fd = rawConnect(fx.socket());
        ASSERT_GE(fd, 0);
        ASSERT_EQ(write(fd, "garbage-not-a-frame", 19), 19);
        ::close(fd);
    }
    // Connection 2: right magic, wrong version -> Error frame reply.
    {
        const int fd = rawConnect(fx.socket());
        ASSERT_GE(fd, 0);
        std::uint8_t hdr[12] = {0};
        hdr[0] = 'D'; hdr[1] = 'W'; hdr[2] = 'S'; hdr[3] = 'V';
        hdr[4] = 99;
        hdr[6] = 1;
        ASSERT_EQ(write(fd, hdr, sizeof hdr), (ssize_t)sizeof hdr);
        ServeFrame f;
        EXPECT_EQ(readFrame(fd, f), FrameIo::Ok);
        EXPECT_EQ(f.type, FrameType::Error);
        std::string msg;
        ASSERT_TRUE(decodeError(f.payload, msg));
        EXPECT_NE(msg.find("version"), std::string::npos) << msg;
        ::close(fd);
    }
    // The daemon still serves a healthy client afterwards.
    ServeClient client;
    ASSERT_TRUE(client.connectTo(fx.socket(), err)) << err;
    ServeStatus st;
    EXPECT_TRUE(client.status(st, err)) << err;
    EXPECT_EQ(st.workers, 2u);
}

TEST(ServeDaemon, MidBatchDisconnectStillPopulatesCache)
{
    DaemonFixture fx;
    ASSERT_TRUE(fx.started);
    std::string err;

    // A ghost client submits a batch and vanishes without reading the
    // reply: hand-roll the send half of submitBatch, then drop the
    // connection.
    {
        const int fd = rawConnect(fx.socket());
        ASSERT_GE(fd, 0);
        const std::vector<ServeJob> jobs = {
            tinyJob("Short", PolicyConfig::conv(), "Conv")};
        ASSERT_TRUE(writeFrame(fd, FrameType::SubmitBatch,
                               encodeSubmitBatch(jobs)));
        ::close(fd); // gone before the reply
    }

    // The daemon must keep serving, and the ghost's cell must land in
    // the cache: the next client gets a warm hit once the abandoned
    // simulation drains. Re-submitting is harmless either way (a
    // not-yet-cached cell just simulates again).
    ServeClient client;
    ASSERT_TRUE(client.connectTo(fx.socket(), err)) << err;
    const std::vector<ServeJob> jobs = {
        tinyJob("Short", PolicyConfig::conv(), "Conv")};
    std::vector<ServeResult> res;
    bool cached = false;
    for (int tries = 0; tries < 100 && !cached; tries++) {
        ASSERT_TRUE(client.submitBatch(jobs, res, err)) << err;
        ASSERT_EQ(res.size(), 1u);
        ASSERT_TRUE(res[0].ok()) << res[0].error;
        cached = res[0].cached;
    }
    EXPECT_TRUE(cached)
            << "ghost client's batch never populated the cache";
}

TEST(ServeDaemon, CacheSurvivesDaemonRestart)
{
    TempDir tmp;
    ServeDaemon::Options opts;
    opts.socketPath = tmp.path + "/serve.sock";
    opts.cacheDir = tmp.path + "/cache";
    opts.jobs = 2;
    std::string err;
    std::string coldFp;

    {
        ServeDaemon daemon(opts);
        ASSERT_TRUE(daemon.start(err)) << err;
        ServeClient client;
        ASSERT_TRUE(client.connectTo(opts.socketPath, err)) << err;
        std::vector<ServeResult> res;
        ASSERT_TRUE(client.submitBatch(
                {tinyJob("Short", PolicyConfig::conv(), "Conv")}, res,
                err))
                << err;
        ASSERT_EQ(res.size(), 1u);
        ASSERT_TRUE(res[0].ok()) << res[0].error;
        EXPECT_FALSE(res[0].cached);
        coldFp = res[0].fingerprint;
        client.close();
        daemon.stop();
    }

    ServeDaemon daemon(opts);
    ASSERT_TRUE(daemon.start(err)) << err;
    ServeClient client;
    ASSERT_TRUE(client.connectTo(opts.socketPath, err)) << err;
    std::vector<ServeResult> res;
    ASSERT_TRUE(client.submitBatch(
            {tinyJob("Short", PolicyConfig::conv(), "Conv")}, res, err))
            << err;
    ASSERT_EQ(res.size(), 1u);
    ASSERT_TRUE(res[0].ok()) << res[0].error;
    EXPECT_TRUE(res[0].cached);
    EXPECT_EQ(res[0].fingerprint, coldFp);
}

TEST(ServeDaemon, CorruptedEntryIsResimulatedNotServed)
{
    DaemonFixture fx;
    ASSERT_TRUE(fx.started);
    ServeClient client;
    std::string err;
    ASSERT_TRUE(client.connectTo(fx.socket(), err)) << err;
    const std::vector<ServeJob> jobs = {
        tinyJob("Short", PolicyConfig::conv(), "Conv")};
    std::vector<ServeResult> cold;
    ASSERT_TRUE(client.submitBatch(jobs, cold, err)) << err;
    ASSERT_TRUE(cold[0].ok()) << cold[0].error;

    // Vandalize the single entry on disk.
    int vandalized = 0;
    for (const auto &de :
         fs::directory_iterator(fx.tmp.path + "/cache")) {
        std::ofstream f(de.path(), std::ios::trunc);
        f << "vandalized\n";
        vandalized++;
    }
    ASSERT_EQ(vandalized, 1);
    std::vector<ServeResult> again;
    ASSERT_TRUE(client.submitBatch(jobs, again, err)) << err;
    ASSERT_TRUE(again[0].ok()) << again[0].error;
    EXPECT_FALSE(again[0].cached); // re-simulated, not served corrupt
    EXPECT_EQ(again[0].fingerprint, cold[0].fingerprint);
    ServeCacheCounters c;
    ASSERT_TRUE(client.cacheStats(c, err)) << err;
    EXPECT_EQ(c.corrupt, 1u);
}

TEST(ServeDaemon, FlushAndShutdownFrames)
{
    DaemonFixture fx;
    ASSERT_TRUE(fx.started);
    ServeClient client;
    std::string err;
    ASSERT_TRUE(client.connectTo(fx.socket(), err)) << err;
    std::vector<ServeResult> res;
    ASSERT_TRUE(client.submitBatch(
            {tinyJob("Short", PolicyConfig::conv(), "Conv")}, res, err))
            << err;
    std::uint64_t removed = 0;
    ASSERT_TRUE(client.flushCache(removed, err)) << err;
    EXPECT_EQ(removed, 1u);
    ASSERT_TRUE(client.shutdownServer(err)) << err;
    fx.daemon->wait(); // returns because Shutdown requested the stop
    fx.daemon->stop();
}

// --------------------------------------------------------------------
// Executor serve mode
// --------------------------------------------------------------------

TEST(ServeExecutor, ServedSweepIsBitIdenticalToLocal)
{
    DaemonFixture fx;
    ASSERT_TRUE(fx.started);

    const SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    const SweepJob job{"Short", cfg, KernelScale::Tiny, "Conv"};

    SweepExecutor local(2);
    const RunStats localStats = local.submit(job).get().run.stats;

    SweepExecutor served(2);
    served.setServe(fx.socket());
    const JobResult cold = served.submit(job).get();
    ASSERT_TRUE(cold.ok()) << cold.error;
    EXPECT_FALSE(cold.cached);
    EXPECT_EQ(cold.run.stats.fingerprint(), localStats.fingerprint());

    SweepExecutor warm(2);
    warm.setServe(fx.socket());
    const JobResult hit = warm.submit(job).get();
    ASSERT_TRUE(hit.ok()) << hit.error;
    EXPECT_TRUE(hit.cached);
    EXPECT_EQ(hit.run.stats.fingerprint(), localStats.fingerprint());
    const auto recs = warm.records();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_TRUE(recs[0].cached);
}

TEST(ServeExecutor, UnreachableDaemonDegradesToBitIdenticalLocalRun)
{
    TempDir tmp;
    const SweepJob job{"Short",
                       SystemConfig::table3(PolicyConfig::conv()),
                       KernelScale::Tiny, "Conv"};
    SweepExecutor local(1);
    const RunStats localStats = local.submit(job).get().run.stats;

    SweepExecutor ex(1);
    ServeConfig cfg;
    cfg.endpoint = tmp.path + "/nobody.sock";
    cfg.connectTimeoutMs = 200;
    cfg.retry.maxAttempts = 2;
    cfg.retry.baseDelayMs = 1;
    cfg.retry.maxDelayMs = 4;
    ex.setServe(cfg); // degrades: warn once, serve mode off
    const JobResult r = ex.submit(job).get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.degraded);
    EXPECT_FALSE(r.cached);
    // Degraded means *local and correct*, not approximate.
    EXPECT_EQ(r.run.stats.fingerprint(), localStats.fingerprint());
    const auto recs = ex.records();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_TRUE(recs[0].degraded);
}

TEST(ServeExecutorDeathTest, NoFallbackMakesUnreachableDaemonFatal)
{
    TempDir tmp;
    SweepExecutor ex(1);
    ServeConfig cfg;
    cfg.endpoint = tmp.path + "/nobody.sock";
    cfg.connectTimeoutMs = 200;
    cfg.retry.maxAttempts = 1;
    cfg.allowFallback = false;
    EXPECT_EXIT(ex.setServe(cfg), ::testing::ExitedWithCode(1),
                "--serve");
}

// --------------------------------------------------------------------
// Journal config-hash invalidation (the --resume staleness fix)
// --------------------------------------------------------------------

TEST(Journal, ResumeIgnoresCellsJournaledUnderADifferentConfig)
{
    TempDir tmp;
    const std::string journal = tmp.path + "/sweep.jsonl";
    const SweepJob jobA{"Short",
                        SystemConfig::table3(PolicyConfig::conv()),
                        KernelScale::Tiny, "Row"};
    SweepJob jobB = jobA;
    jobB.cfg.wpu.dcache.sizeBytes /= 2; // same label+kernel, new config

    {
        SweepExecutor ex(1);
        ex.setJournal(journal, false);
        ASSERT_TRUE(ex.submit(jobA).get().ok());
    }
    // Same label + kernel but a different config: the journaled cell
    // must NOT be restored (this was the stale-resume bug).
    {
        SweepExecutor ex(1);
        ex.setJournal(journal, true);
        const JobResult r = ex.submit(jobB).get();
        ASSERT_TRUE(r.ok());
        EXPECT_FALSE(r.resumed);
    }
    // The identical config IS restored without re-simulation.
    {
        SweepExecutor ex(1);
        ex.setJournal(journal, true);
        const JobResult r = ex.submit(jobA).get();
        ASSERT_TRUE(r.ok());
        EXPECT_TRUE(r.resumed);
    }
    // And both configs now resume independently from the one journal.
    {
        SweepExecutor ex(1);
        ex.setJournal(journal, true);
        EXPECT_TRUE(ex.submit(jobA).get().resumed);
        EXPECT_TRUE(ex.submit(jobB).get().resumed);
    }
}

TEST(Journal, LinesWithoutConfigHashAreReSimulated)
{
    TempDir tmp;
    const std::string journal = tmp.path + "/old.jsonl";
    const SweepJob job{"Short",
                       SystemConfig::table3(PolicyConfig::conv()),
                       KernelScale::Tiny, "Row"};
    // Journal the cell, then strip the cfg field to fake a journal
    // written by a build predating the config hash.
    {
        SweepExecutor ex(1);
        ex.setJournal(journal, false);
        ASSERT_TRUE(ex.submit(job).get().ok());
    }
    {
        std::ifstream in(journal);
        std::string line;
        std::getline(in, line);
        in.close();
        const auto at = line.find("\"cfg\":");
        ASSERT_NE(at, std::string::npos);
        const auto end = line.find(',', at);
        ASSERT_NE(end, std::string::npos);
        line.erase(at, end - at + 1);
        std::ofstream out(journal, std::ios::trunc);
        out << line << "\n";
    }
    SweepExecutor ex(1);
    ex.setJournal(journal, true);
    const JobResult r = ex.submit(job).get();
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.resumed);
}

} // namespace
} // namespace dws
