/**
 * @file
 * Tests for the tracing subsystem (src/trace/): ring overflow
 * accounting, JSON emission, trace determinism, fingerprint
 * neutrality, binary round-trips through the dws_trace library
 * functions, metrics-timeline epochs, and the invariant-checker
 * reconciliation of the tracer's occupancy mirrors.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "sim/json_writer.hh"
#include "trace/perfetto.hh"
#include "trace/reader.hh"
#include "trace/sinks.hh"
#include "trace/trace.hh"

namespace dws {
namespace {

// --- ring buffer -------------------------------------------------------

TEST(TraceRing, OverflowWrapsAndCountsDrops)
{
    TraceRing ring(4);
    for (std::uint64_t i = 0; i < 10; i++) {
        TraceRecord r;
        r.cycle = i;
        const bool fit = ring.push(r);
        EXPECT_EQ(fit, i < 4) << i;
    }
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_TRUE(ring.full());
    EXPECT_EQ(ring.dropped(), 6u);

    // The survivors are the newest four, oldest first.
    std::vector<TraceRecord> out;
    ring.drainTo(out);
    ASSERT_EQ(out.size(), 4u);
    for (std::uint64_t i = 0; i < 4; i++)
        EXPECT_EQ(out[i].cycle, 6 + i);
    EXPECT_EQ(ring.size(), 0u);
    // dropped() is cumulative, not reset by draining.
    EXPECT_EQ(ring.dropped(), 6u);
}

// --- JSON writer -------------------------------------------------------

TEST(JsonWriter, EscapesAndNests)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonEscape(std::string("x\x01y")), "x\\u0001y");

    std::ostringstream os;
    {
        JsonWriter w(os, 0); // compact
        w.beginObject();
        w.field("name", "he said \"hi\"");
        w.field("n", 3);
        w.key("list");
        w.beginArray();
        w.value(true);
        w.value(2.5);
        w.endArray();
        w.endObject();
    }
    EXPECT_EQ(os.str(),
              "{\"name\":\"he said \\\"hi\\\"\",\"n\":3,"
              "\"list\":[true,2.5]}");
}

TEST(JsonWriter, IndentedOutputMatchesExecutorShape)
{
    std::ostringstream os;
    JsonWriter w(os, 2);
    w.beginObject();
    w.field("jobs", 2);
    w.endObject();
    EXPECT_EQ(os.str(), "{\n  \"jobs\": 2\n}");
}

// --- tracing runs ------------------------------------------------------

// Everything below needs a System that actually instantiates a Tracer,
// which is compiled out under -DDWS_TRACE_DISABLED (DWS_TRACING=OFF).
// The ring/JSON/flag-plumbing tests above still run in that build.
#ifndef DWS_TRACE_DISABLED

/** Run one kernel with tracing into an in-memory binary sink. */
std::string
traceRun(const std::string &kernel, const PolicyConfig &pol,
         RunStats *statsOut = nullptr, int mode = 3, Cycle epoch = 1024)
{
    SystemConfig cfg = SystemConfig::table3(pol);
    cfg.traceMode = mode;
    cfg.traceEpoch = epoch;

    KernelParams kp;
    kp.scale = KernelScale::Tiny;
    kp.seed = cfg.seed;
    kp.subdivThreshold = cfg.policy.subdivMaxPostBlock;
    auto k = makeKernel(kernel, kp);
    if (!k) {
        ADD_FAILURE() << "unknown kernel " << kernel;
        return {};
    }

    std::ostringstream os;
    System sys(cfg, *k);
    sys.attachTraceSink(std::make_unique<BinaryTraceSink>(os));
    const RunStats stats = sys.run();
    if (statsOut)
        *statsOut = stats;
    EXPECT_NE(sys.tracer(), nullptr);
    EXPECT_GT(sys.tracer()->recordsTotal(), 0u);
    return os.str();
}

TEST(Trace, IdenticalRunsProduceByteIdenticalTraces)
{
    const std::string a = traceRun("SVM", PolicyConfig::reviveSplit());
    const std::string b = traceRun("SVM", PolicyConfig::reviveSplit());
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(Trace, TracingDoesNotPerturbFingerprints)
{
    // The headline observational guarantee: full tracing (events +
    // timeline) leaves RunStats bit-identical for every policy family.
    const std::vector<std::pair<std::string, PolicyConfig>> policies = {
        {"Conv", PolicyConfig::conv()},
        {"DWS.ReviveSplit", PolicyConfig::reviveSplit()},
        {"Slip", PolicyConfig::adaptiveSlip()},
    };
    for (const auto &[label, pol] : policies) {
        RunStats traced;
        traceRun("Merge", pol, &traced);
        const SystemConfig cfg = SystemConfig::table3(pol);
        const RunResult plain =
                runKernel("Merge", cfg, KernelScale::Tiny);
        EXPECT_EQ(traced.fingerprint(), plain.stats.fingerprint())
                << label;
    }
}

TEST(Trace, SinklessTracingBoundsMemoryAndCountsDrops)
{
    SystemConfig cfg = SystemConfig::table3(PolicyConfig::reviveSplit());
    cfg.traceMode = 3;
    cfg.traceRingCap = 64; // tiny rings, no sink: must wrap, not grow

    KernelParams kp;
    kp.scale = KernelScale::Tiny;
    kp.seed = cfg.seed;
    kp.subdivThreshold = cfg.policy.subdivMaxPostBlock;
    auto k = makeKernel("SVM", kp);
    ASSERT_NE(k, nullptr);
    System sys(cfg, *k);
    sys.run();
    ASSERT_NE(sys.tracer(), nullptr);
    EXPECT_EQ(sys.tracer()->recordsTotal(), 0u); // nothing flushed
    EXPECT_GT(sys.tracer()->dropped(), 0u);
}

// --- binary round trip through the reader ------------------------------

TEST(Trace, BinaryRoundTripChecksCleanAndConverts)
{
    const std::string bytes =
            traceRun("Filter", PolicyConfig::reviveSplit());
    ASSERT_FALSE(bytes.empty());
    const std::string path =
            ::testing::TempDir() + "dws_trace_roundtrip.dwst";
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << bytes;
    }

    TraceData t;
    std::string err;
    ASSERT_TRUE(readTraceFile(path, t, err)) << err;
    EXPECT_TRUE(t.hasFooter);
    EXPECT_EQ(t.footer.records, t.records.size());
    EXPECT_EQ(t.footer.dropped, 0u);

    const auto problems = checkTrace(t);
    EXPECT_TRUE(problems.empty())
            << (problems.empty() ? "" : problems.front());

    // Summary mentions the divergence record kinds and the WPU count.
    std::ostringstream sum;
    writeTraceSummary(sum, t);
    EXPECT_NE(sum.str().find("records"), std::string::npos);
    EXPECT_NE(sum.str().find("SplitMem"), std::string::npos);

    // Perfetto export: loadable trace-event JSON with split tracks.
    std::ostringstream perf;
    writePerfetto(perf, t.header, t.records);
    EXPECT_NE(perf.str().find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(perf.str().find("warp"), std::string::npos);

    // A trace diffs clean against itself...
    std::ostringstream diff;
    EXPECT_EQ(diffTraces(diff, t, t), -1);

    // ...and a single flipped record is located exactly.
    TraceData mutated = t;
    ASSERT_GT(mutated.records.size(), 5u);
    mutated.records[5].arg0 ^= 1;
    std::ostringstream diff2;
    EXPECT_EQ(diffTraces(diff2, t, mutated), 5);

    std::remove(path.c_str());
}

TEST(Trace, CheckFlagsCorruption)
{
    const std::string bytes = traceRun("Short", PolicyConfig::conv());
    TraceData t;
    {
        const std::string path =
                ::testing::TempDir() + "dws_trace_corrupt.dwst";
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << bytes;
        f.close();
        std::string err;
        ASSERT_TRUE(readTraceFile(path, t, err)) << err;
        std::remove(path.c_str());
    }
    ASSERT_FALSE(t.records.empty());
    t.records.front().mask ^= 0xff; // corrupt one record
    const auto problems = checkTrace(t);
    bool checksum = false;
    for (const auto &p : problems)
        checksum |= p.find("checksum") != std::string::npos;
    EXPECT_TRUE(checksum);
}

// --- metrics timeline --------------------------------------------------

TEST(Trace, TimelineEmitsEpochSamples)
{
    const std::string bytes = traceRun(
            "FFT", PolicyConfig::reviveSplit(), nullptr,
            /*mode=*/2, /*epoch=*/256);
    const std::string path =
            ::testing::TempDir() + "dws_trace_timeline.dwst";
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << bytes;
    }
    TraceData t;
    std::string err;
    ASSERT_TRUE(readTraceFile(path, t, err)) << err;
    std::remove(path.c_str());

    EXPECT_EQ(t.header.epoch, 256u);
    int exec = 0, occ = 0, rate = 0, other = 0;
    Cycle lastEpochCycle = 0;
    for (const auto &r : t.records) {
        switch (static_cast<TraceKind>(r.kind)) {
          case TraceKind::EpochExec: exec++; break;
          case TraceKind::EpochOcc: occ++; break;
          case TraceKind::EpochRate:
            rate++;
            lastEpochCycle = r.cycle;
            break;
          default: other++;
        }
    }
    EXPECT_GT(exec, 0);
    EXPECT_EQ(exec, occ);
    EXPECT_EQ(exec, rate);
    EXPECT_EQ(other, 0) << "timeline mode must emit only epoch records";
    EXPECT_GT(lastEpochCycle, 0u);
}

// --- invariant cross-check ---------------------------------------------

TEST(Trace, OccupancyMirrorsSurviveInvariantAudits)
{
    // Frequent audits + full tracing: any split/WST/MSHR mutation that
    // bypassed its trace hook panics inside the run.
    for (const char *kernel : {"Merge", "SVM", "LU"}) {
        SystemConfig cfg =
                SystemConfig::table3(PolicyConfig::reviveSplit());
        cfg.traceMode = 3;
        cfg.checkInvariants = 64;
        const RunResult r = runKernel(kernel, cfg, KernelScale::Tiny);
        EXPECT_TRUE(r.valid) << kernel;
    }
}

#endif // DWS_TRACE_DISABLED

// --- bench flag plumbing ----------------------------------------------

TEST(Trace, WithBenchTraceStampsPerJobFiles)
{
    setBenchTrace(3, "out/run.dwst");
    const SystemConfig cfg = withBenchTrace(
            SystemConfig::table3(PolicyConfig::conv()),
            "DWS.ReviveSplit", "FFT");
    EXPECT_EQ(cfg.traceMode, 3);
    EXPECT_EQ(cfg.traceOut, "out/run.DWS-ReviveSplit.FFT.dwst");

    setBenchTrace(1, "noext");
    const SystemConfig cfg2 = withBenchTrace(
            SystemConfig::table3(PolicyConfig::conv()), "Conv", "LU");
    EXPECT_EQ(cfg2.traceMode, 1);
    EXPECT_EQ(cfg2.traceOut, "noext.Conv.LU");

    setBenchTrace(0, "");
    const SystemConfig cfg3 = withBenchTrace(
            SystemConfig::table3(PolicyConfig::conv()), "Conv", "LU");
    EXPECT_EQ(cfg3.traceMode, 0);
    EXPECT_TRUE(cfg3.traceOut.empty());
}

} // namespace
} // namespace dws
