/**
 * @file
 * Unit tests for the memory hierarchy: cache arrays, MSHRs, the MESI
 * directory, crossbar/DRAM bandwidth accounting, and the integrated
 * MemSystem timing paths.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/crossbar.hh"
#include "mem/directory.hh"
#include "mem/dram.hh"
#include "mem/level.hh"
#include "mem/memory.hh"
#include "mem/memsys.hh"
#include "mem/mshr.hh"
#include "mem/sharers.hh"
#include "sim/event_queue.hh"

namespace dws {
namespace {

CacheConfig
smallCache()
{
    CacheConfig c;
    c.sizeBytes = 1024; // 8 lines
    c.assoc = 2;
    c.lineBytes = 128;
    c.hitLatency = 3;
    c.banks = 4;
    return c;
}

TEST(CacheArray, GeometryAndLineAddressing)
{
    CacheArray c(smallCache(), "t");
    EXPECT_EQ(c.lineAddr(0), 0u);
    EXPECT_EQ(c.lineAddr(127), 0u);
    EXPECT_EQ(c.lineAddr(128), 128u);
    EXPECT_EQ(c.lineAddr(1000), 896u);
    EXPECT_EQ(c.bankOf(0), 0);
    EXPECT_EQ(c.bankOf(128), 1);
    EXPECT_EQ(c.bankOf(512), 0);
}

TEST(CacheArray, AllocateFindInvalidate)
{
    CacheArray c(smallCache(), "t");
    EXPECT_EQ(c.find(0), nullptr);
    CacheLine *l = c.allocate(0, 1, nullptr);
    ASSERT_NE(l, nullptr);
    l->state = CoherState::Shared;
    EXPECT_EQ(c.find(0), l);
    EXPECT_EQ(c.validLines(), 1);
    EXPECT_EQ(c.invalidate(0), CoherState::Shared);
    EXPECT_EQ(c.find(0), nullptr);
    EXPECT_EQ(c.invalidate(0), CoherState::Invalid);
}

TEST(CacheArray, LruEviction)
{
    CacheArray c(smallCache(), "t"); // 4 sets x 2 ways
    // Two lines in the same set: 0 and 4*128=512.
    CacheLine *a = c.allocate(0, 1, nullptr);
    a->state = CoherState::Shared;
    CacheLine *b = c.allocate(512, 2, nullptr);
    b->state = CoherState::Shared;
    c.touch(c.find(0), 5); // 0 is now MRU
    Addr evicted = ~Addr(0);
    CacheLine *d = c.allocate(1024, 6, [&](Addr v, CoherState) {
        evicted = v;
    });
    d->state = CoherState::Shared;
    EXPECT_EQ(evicted, 512u); // LRU victim
    EXPECT_NE(c.find(0), nullptr);
    EXPECT_EQ(c.find(512), nullptr);
}

TEST(CacheArray, PendingLinesArePinned)
{
    CacheArray c(smallCache(), "t");
    CacheLine *a = c.allocate(0, 1, nullptr);
    a->state = CoherState::Shared;
    a->readyAt = 100; // in-flight fill
    CacheLine *b = c.allocate(512, 2, nullptr);
    b->state = CoherState::Shared;
    b->readyAt = 100;
    // Both ways of set 0 pinned at cycle 5: allocation must fail.
    EXPECT_EQ(c.allocate(1024, 5, nullptr), nullptr);
    // After the fills land, allocation succeeds again.
    EXPECT_NE(c.allocate(1024, 200, nullptr), nullptr);
}

TEST(CacheArray, FullyAssociative)
{
    CacheConfig cfg = smallCache();
    cfg.assoc = 0;
    CacheArray c(cfg, "fa");
    // All 8 lines fit regardless of address spacing.
    for (int i = 0; i < 8; i++) {
        CacheLine *l = c.allocate(static_cast<Addr>(i) * 512, 1, nullptr);
        ASSERT_NE(l, nullptr);
        l->state = CoherState::Shared;
    }
    EXPECT_EQ(c.validLines(), 8);
    for (int i = 0; i < 8; i++)
        EXPECT_NE(c.find(static_cast<Addr>(i) * 512), nullptr);
}

TEST(Mshr, AllocateCoalesceRelease)
{
    MshrFile f(2, 3);
    EXPECT_TRUE(f.available());
    MshrEntry *a = f.allocate(0, 100, false);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(f.find(0), a);
    EXPECT_TRUE(f.addTarget(a));
    EXPECT_TRUE(f.addTarget(a));
    EXPECT_FALSE(f.addTarget(a)); // target capacity 3 reached
    MshrEntry *b = f.allocate(128, 90, true);
    ASSERT_NE(b, nullptr);
    EXPECT_FALSE(f.available());
    EXPECT_EQ(f.allocate(256, 80, false), nullptr);
    EXPECT_EQ(f.earliestReady(), std::optional<Cycle>(90));
    f.release(128);
    EXPECT_TRUE(f.available());
    EXPECT_EQ(f.earliestReady(), std::optional<Cycle>(100));
    f.release(0);
    EXPECT_EQ(f.earliestReady(), std::nullopt);
}

TEST(Mshr, EarliestReadyDistinguishesCycleZeroFromEmpty)
{
    // Cycle 0 used to double as the "no entries" sentinel, so an entry
    // legitimately ready at cycle 0 was reported as "none pending".
    MshrFile f(2, 2);
    EXPECT_FALSE(f.earliestReady().has_value());
    f.allocate(64, 0, false);
    ASSERT_TRUE(f.earliestReady().has_value());
    EXPECT_EQ(*f.earliestReady(), 0u);
    f.allocate(128, 7, false);
    EXPECT_EQ(f.earliestReady(), std::optional<Cycle>(0));
    f.release(64);
    EXPECT_EQ(f.earliestReady(), std::optional<Cycle>(7));
    f.release(128);
    EXPECT_EQ(f.earliestReady(), std::nullopt);
}

TEST(Directory, GetSGrantsExclusiveWhenAlone)
{
    CacheLine line;
    const DirOutcome out = Directory::getS(line, 1);
    EXPECT_FALSE(out.recall);
    EXPECT_EQ(out.grant, CoherState::Exclusive);
    EXPECT_TRUE(Directory::isSharer(line, 1));
    EXPECT_EQ(line.owner, 1);
}

TEST(Directory, GetSDowngradesRemoteOwner)
{
    CacheLine line;
    Directory::getX(line, 0); // WPU 0 owns M
    const DirOutcome out = Directory::getS(line, 2);
    EXPECT_TRUE(out.recall);
    EXPECT_EQ(out.grant, CoherState::Shared);
    EXPECT_EQ(line.owner, -1);
    EXPECT_TRUE(Directory::isSharer(line, 0));
    EXPECT_TRUE(Directory::isSharer(line, 2));
}

TEST(Directory, GetXInvalidatesSharers)
{
    CacheLine line;
    Directory::getS(line, 0);
    Directory::getS(line, 1);
    Directory::getS(line, 2);
    const DirOutcome out = Directory::getX(line, 3);
    EXPECT_EQ(out.invalidations, 3);
    EXPECT_EQ(out.grant, CoherState::Modified);
    EXPECT_EQ(Directory::sharerCount(line), 1);
    EXPECT_TRUE(Directory::isSharer(line, 3));
    EXPECT_EQ(line.owner, 3);
}

TEST(Directory, RemoveSharerClearsOwner)
{
    CacheLine line;
    Directory::getX(line, 2);
    Directory::removeSharer(line, 2);
    EXPECT_EQ(Directory::sharerCount(line), 0);
    EXPECT_EQ(line.owner, -1);
}

TEST(Crossbar, BandwidthSerializesTransfers)
{
    MemConfig cfg;
    cfg.xbarLatency = 8;
    cfg.xbarBytesPerCycle = 64.0;
    Crossbar x(cfg);
    const Cycle t1 = x.transfer(100, 128); // occupies 2 cycles
    const Cycle t2 = x.transfer(100, 128); // queues behind the first
    EXPECT_EQ(t1, 100u + 2 + 8);
    EXPECT_EQ(t2, 100u + 4 + 8);
    EXPECT_EQ(x.transfers, 2u);
}

TEST(Dram, LatencyPlusBandwidth)
{
    MemConfig cfg;
    cfg.dramLatency = 100;
    cfg.dramBytesPerCycle = 16.0;
    Dram d(cfg);
    const Cycle t1 = d.access(0, 128); // 8 cycles of bus + 100
    EXPECT_EQ(t1, 108u);
    const Cycle t2 = d.access(0, 128);
    EXPECT_EQ(t2, 116u); // bus busy until 8, then 8 more, then latency
}

TEST(FunctionalMemory, ReadWriteRoundTrip)
{
    Memory m(1024);
    m.write(0, 42);
    m.write(1016, -7);
    EXPECT_EQ(m.read(0), 42);
    EXPECT_EQ(m.read(1016), -7);
    m.writeWord(3, 99);
    EXPECT_EQ(m.read(24), 99);
    m.clear();
    EXPECT_EQ(m.read(0), 0);
}

TEST(FunctionalMemory, GrowsButNeverShrinks)
{
    Memory m(64);
    m.resize(32);
    EXPECT_EQ(m.sizeBytes(), 64u);
    m.resize(256);
    EXPECT_EQ(m.sizeBytes(), 256u);
}

// --- MemSystem integration ------------------------------------------

SystemConfig
memCfg()
{
    SystemConfig cfg;
    cfg.numWpus = 2;
    return cfg;
}

TEST(MemSystem, HitAfterFill)
{
    EventQueue eq;
    SystemConfig cfg = memCfg();
    MemSystem ms(cfg, eq);
    const LineResponse miss = ms.accessData(0, 0, false, 0, 10);
    EXPECT_FALSE(miss.retry);
    EXPECT_FALSE(miss.l1Hit);
    // Miss path: at least L1 lookup + crossbar + L2 + crossbar back.
    EXPECT_GE(miss.readyAt,
              10u + 3 + 8 + 30);
    eq.runUntil(miss.readyAt + 1);
    const LineResponse hit = ms.accessData(0, 0, false, 0,
                                           miss.readyAt + 1);
    EXPECT_TRUE(hit.l1Hit);
    EXPECT_EQ(hit.readyAt, miss.readyAt + 1 + 3);
}

TEST(MemSystem, BankDelayAddsToHit)
{
    EventQueue eq;
    SystemConfig cfg = memCfg();
    MemSystem ms(cfg, eq);
    const LineResponse miss = ms.accessData(0, 0, false, 0, 0);
    eq.runUntil(miss.readyAt + 1);
    const LineResponse hit =
            ms.accessData(0, 0, false, 2, miss.readyAt + 1);
    EXPECT_TRUE(hit.l1Hit);
    EXPECT_EQ(hit.readyAt, miss.readyAt + 1 + 3 + 2);
}

TEST(MemSystem, CoalescesIntoPendingMiss)
{
    EventQueue eq;
    SystemConfig cfg = memCfg();
    MemSystem ms(cfg, eq);
    const LineResponse first = ms.accessData(0, 0, false, 0, 0);
    const LineResponse second = ms.accessData(0, 0, false, 0, 1);
    EXPECT_FALSE(second.retry);
    EXPECT_FALSE(second.l1Hit);
    EXPECT_EQ(second.readyAt, first.readyAt);
    EXPECT_EQ(ms.dcache(0).stats.coalescedRequests, 1u);
}

TEST(MemSystem, SecondL2HitIsCheaperThanDram)
{
    EventQueue eq;
    SystemConfig cfg = memCfg();
    MemSystem ms(cfg, eq);
    const LineResponse w0 = ms.accessData(0, 0, false, 0, 0);
    eq.runUntil(w0.readyAt + 1);
    // Other WPU reads the same (now L2-resident) line.
    const LineResponse w1 =
            ms.accessData(1, 0, false, 0, w0.readyAt + 1);
    EXPECT_FALSE(w1.l1Hit);
    EXPECT_LT(w1.readyAt - (w0.readyAt + 1),
              w0.readyAt - 0u); // no DRAM leg this time
}

TEST(MemSystem, WriteInvalidatesRemoteCopy)
{
    EventQueue eq;
    SystemConfig cfg = memCfg();
    MemSystem ms(cfg, eq);
    const LineResponse r0 = ms.accessData(0, 0, false, 0, 0);
    eq.runUntil(r0.readyAt + 1);
    Cycle now = r0.readyAt + 1;
    const LineResponse r1 = ms.accessData(1, 0, false, 0, now);
    eq.runUntil(r1.readyAt + 1);
    now = r1.readyAt + 1;
    // Both WPUs hold the line Shared; WPU0 writes.
    const LineResponse w = ms.accessData(0, 0, true, 0, now);
    EXPECT_FALSE(w.l1Hit); // upgrade counts as a miss
    eq.runUntil(w.readyAt + 1);
    now = w.readyAt + 1;
    EXPECT_EQ(ms.dcache(1).find(0), nullptr);
    EXPECT_EQ(ms.dcache(1).stats.invalidationsReceived, 1u);
    const CacheLine *l = ms.dcache(0).find(0);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->state, CoherState::Modified);
    // WPU1 reads again: recall downgrades WPU0 to Shared.
    const LineResponse r2 = ms.accessData(1, 0, false, 0, now);
    eq.runUntil(r2.readyAt + 1);
    EXPECT_EQ(ms.dcache(0).find(0)->state, CoherState::Shared);
}

TEST(MemSystem, MshrExhaustionReturnsRetryWithHint)
{
    EventQueue eq;
    SystemConfig cfg = memCfg();
    cfg.wpu.dcache.mshrs = 2;
    MemSystem ms(cfg, eq);
    const LineResponse a = ms.accessData(0, 0, false, 0, 0);
    const LineResponse b = ms.accessData(0, 128, false, 0, 0);
    EXPECT_FALSE(a.retry);
    EXPECT_FALSE(b.retry);
    const LineResponse c = ms.accessData(0, 256, false, 0, 0);
    EXPECT_TRUE(c.retry);
    EXPECT_GT(c.readyAt, 0u); // hint: earliest in-flight completion
    EXPECT_LE(c.readyAt, std::max(a.readyAt, b.readyAt));
}

TEST(MemSystem, InstructionFetchPath)
{
    EventQueue eq;
    SystemConfig cfg = memCfg();
    MemSystem ms(cfg, eq);
    const Addr iline = kInstrAddrBase;
    const LineResponse miss = ms.accessInstr(0, iline, 0);
    EXPECT_FALSE(miss.l1Hit);
    eq.runUntil(miss.readyAt + 1);
    const LineResponse hit = ms.accessInstr(0, iline, miss.readyAt + 1);
    EXPECT_TRUE(hit.l1Hit);
    EXPECT_EQ(hit.readyAt, miss.readyAt + 1 + 1); // 1-cycle I$ hit
    EXPECT_EQ(ms.icache(0).stats.readMisses, 1u);
}

TEST(MemSystem, WritebackOnDirtyEviction)
{
    EventQueue eq;
    SystemConfig cfg = memCfg();
    // Tiny L1: 2 lines, direct-ish (1 set x 2 ways).
    cfg.wpu.dcache.sizeBytes = 256;
    cfg.wpu.dcache.assoc = 2;
    MemSystem ms(cfg, eq);
    Cycle now = 0;
    const LineResponse w = ms.accessData(0, 0, true, 0, now);
    eq.runUntil(w.readyAt + 1);
    now = w.readyAt + 1;
    // Fill two more lines to evict the dirty one.
    for (Addr a : {Addr(128), Addr(256)}) {
        const LineResponse r = ms.accessData(0, a, false, 0, now);
        if (!r.retry) {
            eq.runUntil(r.readyAt + 1);
            now = r.readyAt + 1;
        } else {
            now = r.readyAt + 1;
            eq.runUntil(now);
        }
    }
    EXPECT_GE(ms.dcache(0).stats.writebacks, 1u);
}

TEST(MemSystem, RequestChannelSerializesMisses)
{
    EventQueue eq;
    SystemConfig cfg = memCfg();
    MemSystem ms(cfg, eq);
    // Two misses to different lines from the same WPU in one cycle:
    // the second's request departs later.
    const LineResponse a = ms.accessData(0, 0, false, 0, 0);
    const LineResponse b = ms.accessData(0, 4096, false, 0, 0);
    EXPECT_GT(b.readyAt, a.readyAt);
}

// --- width-independent sharer sets ------------------------------------

TEST(SharerSet, InlineWordBasics)
{
    SharerSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0);
    s.add(0);
    s.add(31);
    s.add(63);
    EXPECT_EQ(s.count(), 3);
    EXPECT_TRUE(s.test(31));
    EXPECT_FALSE(s.test(32));
    EXPECT_FALSE(s.noneExcept(31));
    s.remove(0);
    s.remove(63);
    EXPECT_TRUE(s.noneExcept(31));
    s.reset(7);
    EXPECT_EQ(s.count(), 1);
    EXPECT_TRUE(s.test(7));
}

TEST(SharerSet, SpillsBeyondSixtyFourIds)
{
    SharerSet s;
    s.add(5);
    s.add(64);
    s.add(200);
    EXPECT_EQ(s.count(), 3);
    EXPECT_TRUE(s.test(64));
    EXPECT_TRUE(s.test(200));
    EXPECT_FALSE(s.test(199));
    EXPECT_FALSE(s.noneExcept(200));
    std::vector<WpuId> seen;
    s.forEach([&](WpuId w) { seen.push_back(w); });
    EXPECT_EQ(seen, (std::vector<WpuId>{5, 64, 200}));
    s.remove(5);
    s.remove(64);
    EXPECT_TRUE(s.noneExcept(200));
    s.remove(200);
    EXPECT_TRUE(s.empty());
}

TEST(Directory, TracksFortyEightSharers)
{
    CacheLine line;
    for (WpuId w = 0; w < 48; w++)
        Directory::getS(line, w);
    EXPECT_EQ(Directory::sharerCount(line), 48);
    for (WpuId w = 0; w < 48; w++)
        EXPECT_TRUE(Directory::isSharer(line, w));
    // WPU 47 writes: all 47 other copies are invalidated.
    const DirOutcome x = Directory::getX(line, 47);
    EXPECT_EQ(x.invalidations, 47);
    EXPECT_EQ(Directory::sharerCount(line), 1);
    EXPECT_TRUE(Directory::isSharer(line, 47));
    EXPECT_EQ(line.owner, 47);
}

TEST(MemSystem, FortyEightWpuSharerRegression)
{
    EventQueue eq;
    SystemConfig cfg;
    cfg.numWpus = 48;
    MemSystem ms(cfg, eq);
    Cycle now = 0;
    for (WpuId w = 0; w < 48; w++) {
        const LineResponse r = ms.accessData(w, 0, false, 0, now);
        ASSERT_FALSE(r.retry);
        eq.runUntil(r.readyAt + 1);
        now = r.readyAt + 1;
    }
    CacheLine *l2l = ms.l2().find(0);
    ASSERT_NE(l2l, nullptr);
    EXPECT_EQ(Directory::sharerCount(*l2l), 48);
    EXPECT_TRUE(Directory::isSharer(*l2l, 47));
    // WPU 0 writes: every remote copy (ids up to 47, past the old
    // 32-bit mask) is invalidated.
    const LineResponse w = ms.accessData(0, 0, true, 0, now);
    eq.runUntil(w.readyAt + 1);
    EXPECT_EQ(Directory::sharerCount(*l2l), 1);
    for (WpuId v = 1; v < 48; v++) {
        EXPECT_EQ(ms.dcache(v).find(0), nullptr);
        EXPECT_EQ(ms.dcache(v).stats.invalidationsReceived, 1u);
    }
}

// --- banked MSHR files ------------------------------------------------

TEST(Mshr, BankedPerBankExhaustion)
{
    CacheConfig c;
    c.lineBytes = 128;
    c.mshrs = 4;
    c.mshrBanks = 2;
    MshrFile f(c, 0);
    EXPECT_EQ(f.banks(), 2);
    EXPECT_EQ(f.perBankCapacity(), 2);
    // Lines 0 and 256 land in bank 0; 128 and 384 in bank 1.
    EXPECT_EQ(f.bankOf(0), 0);
    EXPECT_EQ(f.bankOf(128), 1);
    ASSERT_NE(f.allocate(0, 10, false), nullptr);
    ASSERT_NE(f.allocate(256, 10, false), nullptr);
    EXPECT_FALSE(f.available(512));   // bank 0 full
    EXPECT_EQ(f.allocate(512, 10, false), nullptr);
    EXPECT_TRUE(f.available(128));    // bank 1 still open
    ASSERT_NE(f.allocate(128, 10, false), nullptr);
    EXPECT_EQ(f.inUse(), 3);
    EXPECT_EQ(f.bankInUse(0), 2);
    EXPECT_EQ(f.bankInUse(1), 1);
    f.release(0);
    EXPECT_TRUE(f.available(512));
    EXPECT_EQ(f.inUse(), 2);
    EXPECT_EQ(f.bankInUse(0), 1);
}

TEST(Mshr, DownSideOccupancyAccounting)
{
    CacheConfig c;
    c.lineBytes = 128;
    c.mshrs = 4;
    c.mshrBanks = 1;
    c.mshrDownEntries = 2;
    MshrFile f(c, 0);
    EXPECT_EQ(f.downInUse(0), 0);
    f.noteDown(0, 100, 0);
    f.noteDown(128, 200, 0);
    EXPECT_EQ(f.downInUse(0), 2);
    EXPECT_EQ(f.downPeak(), 2);
    EXPECT_EQ(f.downFullEvents(), 0u);
    // Bank full: the earliest-completing entry is displaced, counted,
    // and the machine never stalls.
    f.noteDown(256, 300, 0);
    EXPECT_EQ(f.downFullEvents(), 1u);
    EXPECT_EQ(f.downInUse(0), 2);
    // Completions drain lazily.
    EXPECT_EQ(f.downInUse(250), 1);
    EXPECT_EQ(f.downInUse(300), 0);
    EXPECT_EQ(f.downPeak(), 2);
}

// --- composable fabric ------------------------------------------------

TEST(CacheFabric, FactoryBuildsTwoLevelTree)
{
    const auto levels = buildFabric(HierarchySpec::table3(), 4);
    ASSERT_EQ(levels.size(), 1u);
    EXPECT_EQ(levels[0]->name(), "l2");
    EXPECT_EQ(levels[0]->index(), 0);
    EXPECT_EQ(levels[0]->sliceCount(), 1);
    EXPECT_EQ(levels[0]->below(), nullptr);
    EXPECT_EQ(levels[0]->reqChannelFree.size(), 4u);
}

TEST(CacheFabric, FactoryBuildsThreeLevelSlicedTree)
{
    HierarchySpec spec;
    std::string err;
    ASSERT_TRUE(HierarchySpec::parse(
            "l1d:32k:8:3,l2:1m:16:30,l3:8m:16:60:2", spec, err))
            << err;
    EXPECT_TRUE(err.empty());
    ASSERT_TRUE(spec.l1d.has_value());
    EXPECT_EQ(spec.l1d->sizeBytes, 32u * 1024);
    EXPECT_EQ(spec.validate(16), "");
    const auto levels = buildFabric(spec, 16);
    ASSERT_EQ(levels.size(), 2u);
    EXPECT_EQ(levels[0]->name(), "l2");
    EXPECT_EQ(levels[1]->name(), "l3");
    EXPECT_EQ(levels[0]->below(), levels[1].get());
    EXPECT_EQ(levels[1]->below(), nullptr);
    EXPECT_EQ(levels[1]->sliceCount(), 2);
    EXPECT_EQ(levels[1]->totalBytes(), 16u * 1024 * 1024);
    // Interleaved slices: consecutive lines alternate slices and each
    // slice's MSHR bank decode skips the slice-select bits.
    EXPECT_NE(levels[1]->sliceOf(0), levels[1]->sliceOf(128));
    EXPECT_EQ(levels[1]->sliceOf(0), levels[1]->sliceOf(256));
}

TEST(HierarchySpec, ParseRejectsMalformedSpecs)
{
    HierarchySpec spec;
    std::string err;
    EXPECT_FALSE(HierarchySpec::parse("", spec, err));
    EXPECT_FALSE(HierarchySpec::parse("bogus", spec, err));
    EXPECT_FALSE(HierarchySpec::parse("l2:1m:16", spec, err));
    EXPECT_FALSE(HierarchySpec::parse("l3:1m:16:30", spec, err));
    EXPECT_FALSE(HierarchySpec::parse("l2:1m:16:30,l4:8m:16:60", spec,
                                      err));
    EXPECT_FALSE(HierarchySpec::parse("l1d:32k:8:3", spec, err));
    EXPECT_FALSE(HierarchySpec::parse("l1d:32k:8:3,l1d:16k:8:3,"
                                      "l2:1m:16:30", spec, err));
    EXPECT_FALSE(HierarchySpec::parse("l2:nope:16:30", spec, err));
}

TEST(HierarchySpec, ValidateCatchesBadGeometry)
{
    HierarchySpec spec;
    std::string err;
    ASSERT_TRUE(HierarchySpec::parse("l2:1m:3:30", spec, err));
    EXPECT_NE(spec.validate(4), "");      // non-pow2 assoc
    ASSERT_TRUE(HierarchySpec::parse("l2:1m:16:30", spec, err));
    EXPECT_EQ(spec.validate(4), "");
    EXPECT_NE(spec.validate(0), "");      // absurd WPU counts
    EXPECT_NE(spec.validate(4096), "");
    ASSERT_TRUE(HierarchySpec::parse("l2:1m:16:30:3", spec, err));
    EXPECT_NE(spec.validate(4), "");      // non-pow2 slices
}

TEST(CacheFabric, L3HitIsCheaperThanDram)
{
    EventQueue eq;
    SystemConfig cfg = memCfg();
    HierarchySpec spec;
    std::string err;
    // Two-line direct-mapped L2 over a large L3.
    ASSERT_TRUE(HierarchySpec::parse("l2:256:1:30,l3:64k:16:60", spec,
                                     err)) << err;
    cfg.applyHierarchy(spec);
    MemSystem ms(cfg, eq);
    ASSERT_EQ(ms.sharedLevels(), 2);
    // A goes to DRAM; B maps to A's L2 set and evicts it (inclusively
    // back-invalidating WPU 0's L1 copy), leaving A only in the L3.
    const LineResponse r0 = ms.accessData(0, 0, false, 0, 0);
    eq.runUntil(r0.readyAt + 1);
    const LineResponse rb = ms.accessData(0, 256, false, 0,
                                          r0.readyAt + 1);
    eq.runUntil(rb.readyAt + 1);
    const Cycle now = rb.readyAt + 1;
    EXPECT_EQ(ms.sharedCache(0, 0).find(0), nullptr);
    ASSERT_NE(ms.sharedCache(1, 0).find(0), nullptr);
    const std::uint64_t dramBefore = ms.stats().dramAccesses;
    const LineResponse r2 = ms.accessData(1, 0, false, 0, now);
    eq.runUntil(r2.readyAt + 1);
    EXPECT_FALSE(r2.l1Hit);
    EXPECT_EQ(ms.stats().dramAccesses, dramBefore); // served by the L3
    EXPECT_LT(r2.readyAt - now, r0.readyAt - 0u);
    ASSERT_GE(ms.stats().deeper.size(), 1u);
    EXPECT_GT(ms.stats().deeper[0].reads,
              ms.stats().deeper[0].readMisses);
}

TEST(CacheFabric, BackInvalidationThroughL3)
{
    EventQueue eq;
    SystemConfig cfg = memCfg();
    HierarchySpec spec;
    std::string err;
    // Large L2 over a two-line direct-mapped L3: an L3 conflict must
    // back-invalidate the line from the L2 and every L1 above it.
    ASSERT_TRUE(HierarchySpec::parse("l2:64k:16:30,l3:256:1:60", spec,
                                     err)) << err;
    cfg.applyHierarchy(spec);
    MemSystem ms(cfg, eq);
    const LineResponse r0 = ms.accessData(0, 0, false, 0, 0);
    eq.runUntil(r0.readyAt + 1);
    ASSERT_NE(ms.dcache(0).find(0), nullptr);
    ASSERT_NE(ms.sharedCache(0, 0).find(0), nullptr);
    // B maps onto A's L3 set.
    const LineResponse rb = ms.accessData(1, 256, false, 0,
                                          r0.readyAt + 1);
    eq.runUntil(rb.readyAt + 1);
    EXPECT_EQ(ms.sharedCache(1, 0).find(0), nullptr);
    EXPECT_EQ(ms.sharedCache(0, 0).find(0), nullptr);
    EXPECT_EQ(ms.dcache(0).find(0), nullptr);
    EXPECT_EQ(ms.dcache(0).stats.invalidationsReceived, 1u);
}

} // namespace
} // namespace dws
