/**
 * @file
 * Execution tests for the WPU: straight-line code, uniform and
 * divergent branches, loops, memory operations, barriers, and thread
 * termination — under the conventional (no-DWS) policy.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace dws {
namespace {

/** Every thread computes tid * 3 + 7 and stores it at mem[tid]. */
Program
straightLine()
{
    KernelBuilder b;
    b.muli(2, 0, 3);
    b.addi(2, 2, 7);
    b.muli(3, 0, kWordBytes);
    b.st(3, 2, 0);
    b.halt();
    return b.build("straight");
}

TEST(WpuExec, StraightLineAllThreads)
{
    SystemConfig cfg = testConfig(4, 2, 1);
    TestKernel k(straightLine());
    System sys(cfg, k);
    RunStats s = sys.run();
    for (int t = 0; t < cfg.totalThreads(); t++) {
        EXPECT_EQ(sys.memory().readWord(static_cast<std::uint64_t>(t)),
                  t * 3 + 7)
                << "thread " << t;
    }
    // 5 instructions per thread.
    EXPECT_EQ(s.totalScalarInstrs(),
              static_cast<std::uint64_t>(5 * cfg.totalThreads()));
}

TEST(WpuExec, MultiWpuStraightLine)
{
    SystemConfig cfg = testConfig(4, 2, 4);
    TestKernel k(straightLine());
    System sys(cfg, k);
    sys.run();
    for (int t = 0; t < cfg.totalThreads(); t++)
        EXPECT_EQ(sys.memory().readWord(static_cast<std::uint64_t>(t)),
                  t * 3 + 7);
}

/** Divergent diamond: odd threads add 100, even threads add 1. */
Program
divergentDiamond()
{
    KernelBuilder b;
    auto odd = b.newLabel();
    auto join = b.newLabel();
    b.andi(2, 0, 1);      // r2 = tid & 1
    b.br(2, odd);
    b.movi(3, 1);         // even path
    b.jmp(join);
    b.bind(odd);
    b.movi(3, 100);
    b.bind(join);
    b.add(3, 3, 0);       // r3 += tid (post-dominator block)
    b.muli(4, 0, kWordBytes);
    b.st(4, 3, 0);
    b.halt();
    return b.build("diamond");
}

TEST(WpuExec, DivergentBranchConventional)
{
    SystemConfig cfg = testConfig(8, 1, 1);
    TestKernel k(divergentDiamond());
    System sys(cfg, k);
    RunStats s = sys.run();
    for (int t = 0; t < cfg.totalThreads(); t++) {
        const std::int64_t want = (t % 2 ? 100 : 1) + t;
        EXPECT_EQ(sys.memory().readWord(static_cast<std::uint64_t>(t)),
                  want);
    }
    EXPECT_EQ(s.wpus[0].branches, 1u);
    EXPECT_EQ(s.wpus[0].divergentBranches, 1u);
    EXPECT_EQ(s.wpus[0].branchSplits, 0u); // Conv never splits
}

/** Data-dependent trip counts: thread t loops t+1 times. */
Program
variableLoop()
{
    KernelBuilder b;
    auto loop = b.newLabel();
    auto done = b.newLabel();
    b.addi(2, 0, 1);      // n = tid + 1
    b.movi(3, 0);         // i
    b.movi(4, 0);         // acc
    b.bind(loop);
    b.sle(5, 2, 3);       // i >= n ?
    b.br(5, done);
    b.add(4, 4, 3);       // acc += i
    b.addi(3, 3, 1);
    b.jmp(loop);
    b.bind(done);
    b.muli(6, 0, kWordBytes);
    b.st(6, 4, 0);
    b.halt();
    return b.build("varloop");
}

TEST(WpuExec, VariableTripLoops)
{
    SystemConfig cfg = testConfig(8, 2, 1);
    TestKernel k(variableLoop());
    System sys(cfg, k);
    sys.run();
    for (int t = 0; t < cfg.totalThreads(); t++) {
        const std::int64_t n = t + 1;
        EXPECT_EQ(sys.memory().readWord(static_cast<std::uint64_t>(t)),
                  n * (n - 1) / 2)
                << "thread " << t;
    }
}

/** Nested divergence: two levels of data-dependent branching. */
Program
nestedDivergence()
{
    KernelBuilder b;
    auto l1 = b.newLabel();
    auto l2 = b.newLabel();
    auto j1 = b.newLabel();
    auto j2 = b.newLabel();
    b.andi(2, 0, 1);
    b.andi(3, 0, 2);
    b.movi(4, 0);
    b.br(2, l1);          // outer
    // even tids
    b.br(3, l2);          //   inner
    b.addi(4, 4, 1);      //     tid % 4 == 0
    b.jmp(j2);
    b.bind(l2);
    b.addi(4, 4, 2);      //     tid % 4 == 2
    b.bind(j2);
    b.addi(4, 4, 10);     //   inner post-dominator
    b.jmp(j1);
    b.bind(l1);
    b.addi(4, 4, 100);    // odd tids
    b.bind(j1);
    b.add(4, 4, 0);       // outer post-dominator
    b.muli(5, 0, kWordBytes);
    b.st(5, 4, 0);
    b.halt();
    return b.build("nested");
}

std::int64_t
nestedExpect(int t)
{
    std::int64_t v = 0;
    if (t % 2) {
        v += 100;
    } else {
        v += (t % 4 == 2) ? 2 : 1;
        v += 10;
    }
    return v + t;
}

TEST(WpuExec, NestedDivergence)
{
    SystemConfig cfg = testConfig(8, 1, 1);
    TestKernel k(nestedDivergence());
    System sys(cfg, k);
    sys.run();
    for (int t = 0; t < cfg.totalThreads(); t++)
        EXPECT_EQ(sys.memory().readWord(static_cast<std::uint64_t>(t)),
                  nestedExpect(t))
                << "thread " << t;
}

/** Gather: each thread loads from a permuted location. */
Program
gatherKernel(int total)
{
    KernelBuilder b;
    // src index = (tid * 7 + 3) % total
    b.muli(2, 0, 7);
    b.addi(2, 2, 3);
    b.movi(3, total);
    b.rem(2, 2, 3);
    b.muli(2, 2, kWordBytes);
    b.ld(4, 2, 0);                    // gather
    b.muli(5, 0, kWordBytes);
    b.st(5, 4, total * kWordBytes);   // out[tid] = value
    b.halt();
    return b.build("gather");
}

TEST(WpuExec, GatherScatter)
{
    SystemConfig cfg = testConfig(8, 2, 1);
    const int total = cfg.totalThreads();
    TestKernel k(gatherKernel(total), 1 << 20, [&](Memory &m) {
        for (int i = 0; i < total; i++)
            m.writeWord(static_cast<std::uint64_t>(i), 1000 + i);
    });
    System sys(cfg, k);
    sys.run();
    for (int t = 0; t < total; t++) {
        const int src = (t * 7 + 3) % total;
        EXPECT_EQ(sys.memory().readWord(
                          static_cast<std::uint64_t>(total + t)),
                  1000 + src);
    }
}

/** Barrier: phase 1 writes, phase 2 reads a neighbor's value. */
Program
barrierKernel(int total)
{
    KernelBuilder b;
    b.muli(2, 0, kWordBytes);
    b.st(2, 0, 0);               // a[tid] = tid
    b.bar();
    // read neighbor (tid+1) % total
    b.addi(3, 0, 1);
    b.movi(4, total);
    b.rem(3, 3, 4);
    b.muli(3, 3, kWordBytes);
    b.ld(5, 3, 0);
    b.st(2, 5, total * kWordBytes);
    b.halt();
    return b.build("barrier");
}

TEST(WpuExec, KernelBarrierAcrossWpus)
{
    SystemConfig cfg = testConfig(4, 2, 2);
    const int total = cfg.totalThreads();
    TestKernel k(barrierKernel(total));
    System sys(cfg, k);
    sys.run();
    for (int t = 0; t < total; t++)
        EXPECT_EQ(sys.memory().readWord(
                          static_cast<std::uint64_t>(total + t)),
                  (t + 1) % total);
}

/** Threads halt at different times (loop-exit divergence). */
TEST(WpuExec, StaggeredHalts)
{
    SystemConfig cfg = testConfig(8, 2, 1);
    TestKernel k(variableLoop());
    System sys(cfg, k);
    RunStats s = sys.run();
    EXPECT_GT(s.cycles, 0u);
    // All threads finished.
    EXPECT_TRUE(sys.finished());
}

TEST(WpuExec, BreakdownAccountsAllCycles)
{
    SystemConfig cfg = testConfig(8, 2, 2);
    TestKernel k(divergentDiamond());
    System sys(cfg, k);
    RunStats s = sys.run();
    for (const auto &w : s.wpus)
        EXPECT_EQ(w.totalCycles(), s.cycles);
}

TEST(WpuExec, AvgSimdWidthFullWhenUniform)
{
    SystemConfig cfg = testConfig(8, 1, 1);
    TestKernel k(straightLine());
    System sys(cfg, k);
    RunStats s = sys.run();
    EXPECT_DOUBLE_EQ(s.avgSimdWidth(), 8.0);
}

/** A store followed by a load from another thread's slot, same warp,
 *  no barrier: exercises intra-warp memory through the cache. */
TEST(WpuExec, StoresVisibleToLoads)
{
    KernelBuilder b;
    b.muli(2, 0, kWordBytes);
    b.addi(3, 0, 42);
    b.st(2, 3, 0);
    b.ld(4, 2, 0);
    b.muli(5, 0, kWordBytes);
    b.st(5, 4, 512);
    b.halt();
    SystemConfig cfg = testConfig(4, 1, 1);
    TestKernel k(b.build("storeload"));
    System sys(cfg, k);
    sys.run();
    for (int t = 0; t < 4; t++)
        EXPECT_EQ(sys.memory().readWord(
                          static_cast<std::uint64_t>(64 + t)),
                  t + 42);
}

} // namespace
} // namespace dws
