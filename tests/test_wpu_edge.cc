/**
 * @file
 * WPU edge cases: instruction-cache behavior, MSHR-pressure retries,
 * bank conflicts, scheduler-slot starvation, WST-full fallbacks, and
 * divergence counters.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace dws {
namespace {

/**
 * Heavy gather kernel: every thread streams addresses with its own
 * stride (lane-dependent), so lanes fall out of cache-line phase and
 * accesses mix hits with misses (memory divergence).
 */
Program
strideKernel(int words, int steps)
{
    KernelBuilder b;
    auto loop = b.newLabel();
    auto done = b.newLabel();
    b.muli(2, 0, 257 * kWordBytes); // per-thread start
    b.muli(10, 0, 7);
    b.addi(10, 10, 1039);
    b.muli(10, 10, kWordBytes);     // per-thread stride
    b.movi(3, 0);
    b.movi(4, 0);
    b.bind(loop);
    b.slti(5, 3, steps);
    b.seq(5, 5, 30);
    b.br(5, done);
    b.movi(6, words * kWordBytes);
    b.rem(7, 2, 6);
    b.ld(8, 7, 0);
    b.add(4, 4, 8);
    b.add(2, 2, 10);
    b.addi(3, 3, 1);
    b.jmp(loop);
    b.bind(done);
    b.muli(9, 0, kWordBytes);
    b.st(9, 4, words * kWordBytes);
    b.halt();
    return b.build("stride");
}

TEST(WpuEdge, SurvivesTinyMshrCount)
{
    // With only 2 MSHRs, accesses constantly retry; execution must
    // still complete and produce correct results.
    SystemConfig cfg = testConfig(8, 2, 1);
    cfg.wpu.dcache.mshrs = 2;
    cfg.wpu.dcache.sizeBytes = 2 * 1024;
    cfg.wpu.dcache.assoc = 2;
    TestKernel k(strideKernel(4096, 24), (4096 + 64) * kWordBytes,
                 [](Memory &m) {
                     for (int i = 0; i < 4096; i++)
                         m.writeWord(static_cast<std::uint64_t>(i), i);
                 });
    System sys(cfg, k);
    RunStats s = sys.run();
    EXPECT_TRUE(sys.finished());
    EXPECT_GT(s.dcaches[0].mshrFullEvents, 0u);
}

TEST(WpuEdge, MshrPressureOnlySlowsExecution)
{
    auto cyclesWith = [](int mshrs) {
        SystemConfig cfg = testConfig(8, 2, 1);
        cfg.wpu.dcache.mshrs = mshrs;
        cfg.wpu.dcache.sizeBytes = 2 * 1024;
        cfg.wpu.dcache.assoc = 2;
        TestKernel k(strideKernel(4096, 24),
                     (4096 + 64) * kWordBytes, nullptr);
        System sys(cfg, k);
        return sys.run().cycles;
    };
    EXPECT_GE(cyclesWith(2), cyclesWith(32));
}

TEST(WpuEdge, BankConflictsCounted)
{
    // All lanes load addresses mapping to the same bank: line stride =
    // banks * lineBytes keeps every access in bank 0.
    KernelBuilder b;
    b.muli(2, 0, 16 * 128); // lane * banks*lineBytes
    b.ld(3, 2, 0);
    b.halt();
    SystemConfig cfg = testConfig(8, 1, 1);
    cfg.wpu.dcache.banks = 16;
    TestKernel k(b.build("conflict"), 1 << 20);
    System sys(cfg, k);
    RunStats s = sys.run();
    EXPECT_GT(s.dcaches[0].bankConflicts, 0u);
}

TEST(WpuEdge, InstructionCacheMostlyHits)
{
    SystemConfig cfg = testConfig(8, 2, 1);
    TestKernel k(strideKernel(1024, 16), (1024 + 64) * kWordBytes);
    System sys(cfg, k);
    RunStats s = sys.run();
    // One fetch per issue; misses only on first touch of each line.
    EXPECT_GT(s.icaches[0].reads, 100u);
    EXPECT_LT(s.icaches[0].missRate(), 0.05);
}

TEST(WpuEdge, SchedulerSlotStarvationStillCompletes)
{
    // One slot for two warps: strict serialization, but progress.
    SystemConfig cfg = testConfig(4, 2, 1);
    cfg.wpu.schedSlots = 1;
    TestKernel k(strideKernel(512, 8), (512 + 64) * kWordBytes);
    System sys(cfg, k);
    sys.run();
    EXPECT_TRUE(sys.finished());
}

TEST(WpuEdge, RegistersInitializedWithTidAndCount)
{
    KernelBuilder b;
    b.muli(2, 0, kWordBytes);
    b.st(2, 1, 0); // out[tid] = nthreads
    b.halt();
    SystemConfig cfg = testConfig(4, 2, 2);
    TestKernel k(b.build("init"));
    System sys(cfg, k);
    sys.run();
    for (int t = 0; t < cfg.totalThreads(); t++)
        EXPECT_EQ(sys.memory().readWord(static_cast<std::uint64_t>(t)),
                  cfg.totalThreads());
}

TEST(WpuEdge, ThreadMissMapSizedAndPopulated)
{
    SystemConfig cfg = testConfig(8, 2, 1);
    cfg.wpu.dcache.sizeBytes = 2 * 1024;
    cfg.wpu.dcache.assoc = 2;
    TestKernel k(strideKernel(4096, 24), (4096 + 64) * kWordBytes);
    System sys(cfg, k);
    RunStats s = sys.run();
    ASSERT_EQ(s.wpus[0].threadMisses.size(),
              static_cast<size_t>(cfg.wpu.numThreads()));
    std::uint64_t total = 0;
    for (auto m : s.wpus[0].threadMisses)
        total += m;
    EXPECT_GT(total, 0u);
}

TEST(WpuEdge, WstFullFallsBackToPrivateStack)
{
    // Aggressive DWS with a 2-entry WST: only one subdivision can be
    // live; further divergence must serialize conventionally, and the
    // results must still be correct.
    SystemConfig cfg = testConfig(8, 2, 1);
    cfg.policy = PolicyConfig::dws(SplitScheme::Aggressive);
    cfg.policy.minSplitWidth = 1;
    cfg.wpu.wstEntries = 2;
    cfg.wpu.dcache.sizeBytes = 2 * 1024;
    cfg.wpu.dcache.assoc = 2;
    TestKernel k(strideKernel(4096, 24), (4096 + 64) * kWordBytes,
                 [](Memory &m) {
                     for (int i = 0; i < 4096; i++)
                         m.writeWord(static_cast<std::uint64_t>(i),
                                     7 * i + 3);
                 });
    System sys(cfg, k);
    RunStats s = sys.run();
    EXPECT_LE(sys.wpu(0).wst().peakUse, 2u);
    // Verify results against plain accumulation.
    for (int t = 0; t < cfg.totalThreads(); t++) {
        std::int64_t addr = std::int64_t(t) * 257 * kWordBytes;
        const std::int64_t stride =
                (std::int64_t(t) * 7 + 1039) * kWordBytes;
        std::int64_t acc = 0;
        for (int step = 0; step < 24; step++) {
            const std::int64_t a = addr % (4096 * kWordBytes);
            acc += 7 * (a / kWordBytes) + 3;
            addr += stride;
        }
        EXPECT_EQ(sys.memory().readWord(
                          static_cast<std::uint64_t>(4096 + t)),
                  acc)
                << "thread " << t;
    }
    // Subdivision engaged at least once within the tiny table.
    EXPECT_GT(s.wpus[0].memSplits + s.wpus[0].branchSplits, 0u);
}

TEST(WpuEdge, DivergentBranchCountersConsistent)
{
    SystemConfig cfg = testConfig(8, 2, 1);
    TestKernel k(strideKernel(512, 8), (512 + 64) * kWordBytes);
    System sys(cfg, k);
    RunStats s = sys.run();
    EXPECT_LE(s.wpus[0].divergentBranches, s.wpus[0].branches);
    EXPECT_LE(s.wpus[0].divergentAccesses, s.wpus[0].memAccesses);
    EXPECT_LE(s.wpus[0].missAccesses, s.wpus[0].memAccesses);
}

TEST(WpuEdge, DumpStateIsInformative)
{
    SystemConfig cfg = testConfig(4, 2, 1);
    TestKernel k(strideKernel(256, 4), (256 + 64) * kWordBytes);
    System sys(cfg, k);
    sys.run();
    const std::string dump = sys.wpu(0).dumpState();
    EXPECT_NE(dump.find("wpu0"), std::string::npos);
    EXPECT_NE(dump.find("halted"), std::string::npos);
}

TEST(WpuEdge, ZeroIterationThreadsHaltCleanly)
{
    // Threads whose blocked range is empty must halt immediately and
    // not wedge warps with mixed progress.
    KernelBuilder b;
    auto work = b.newLabel();
    auto done = b.newLabel();
    b.slti(2, 0, 3); // only tids 0..2 work
    b.br(2, work);
    b.jmp(done);
    b.bind(work);
    b.muli(3, 0, kWordBytes);
    b.st(3, 0, 0);
    b.bind(done);
    b.halt();
    SystemConfig cfg = testConfig(8, 2, 2);
    TestKernel k(b.build("partial"));
    System sys(cfg, k);
    sys.run();
    EXPECT_TRUE(sys.finished());
    for (int t = 0; t < 3; t++)
        EXPECT_EQ(sys.memory().readWord(static_cast<std::uint64_t>(t)),
                  t);
}

} // namespace
} // namespace dws
