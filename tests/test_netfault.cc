/**
 * @file
 * Tests for the serve robustness layer (DESIGN.md §17): address
 * parsing, deterministic retry backoff, deadline-bounded frame I/O,
 * auth, overload control (Busy), drain, the TCP listener, the network
 * fault proxy (fault/netfault.hh), and the executor's
 * retry-to-success / degrade-to-local behavior behind each fault.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "fault/netfault.hh"
#include "harness/executor.hh"
#include "harness/runner.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "serve/retry.hh"
#include "serve/server.hh"
#include "serve/transport.hh"
#include "sim/config.hh"

namespace fs = std::filesystem;

namespace dws {
namespace {

/** A unique scratch directory, removed on destruction. */
struct TempDir
{
    TempDir()
    {
        char tmpl[] = "/tmp/dws_netfault_test_XXXXXX";
        path = mkdtemp(tmpl);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string path;
};

void
makeNonBlocking(int fd)
{
    fcntl(fd, F_SETFL, fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
}

ServeJob
tinyJob(const std::string &kernel, const PolicyConfig &pol,
        const std::string &label)
{
    ServeJob j;
    j.kernel = kernel;
    j.label = label;
    j.scale = 0; // KernelScale::Tiny
    j.configKey = SystemConfig::table3(pol).cacheKey();
    return j;
}

// --------------------------------------------------------------------
// Retry policy
// --------------------------------------------------------------------

TEST(RetryPolicy, DeterministicJitteredBackoffWithinBounds)
{
    RetryPolicy p;
    p.baseDelayMs = 50;
    p.maxDelayMs = 2000;
    p.seed = 42;
    for (int attempt = 0; attempt < 8; attempt++) {
        const std::uint32_t base = std::min<std::uint32_t>(
                p.maxDelayMs, p.baseDelayMs << attempt);
        const std::uint32_t d = p.delayMs(attempt, 7);
        // Equal jitter: (base/2, base] — never zero, never above base.
        EXPECT_GT(d, base / 2) << "attempt " << attempt;
        EXPECT_LE(d, base) << "attempt " << attempt;
        // Pure function of (seed, salt, attempt): replays identically.
        EXPECT_EQ(d, p.delayMs(attempt, 7));
    }
}

TEST(RetryPolicy, SaltAndSeedDecorrelateConcurrentClients)
{
    RetryPolicy p;
    p.baseDelayMs = 1000;
    RetryPolicy q = p;
    q.seed ^= 0x1234;
    // Two jobs (different salts) on the same schedule must not march
    // in lockstep, nor must two sweeps with different seeds.
    bool saltDiffers = false, seedDiffers = false;
    for (int a = 0; a < 6; a++) {
        saltDiffers |= p.delayMs(a, 1) != p.delayMs(a, 2);
        seedDiffers |= p.delayMs(a, 1) != q.delayMs(a, 1);
    }
    EXPECT_TRUE(saltDiffers);
    EXPECT_TRUE(seedDiffers);
}

TEST(RetryPolicy, CapsAtMaxDelay)
{
    RetryPolicy p;
    p.baseDelayMs = 100;
    p.maxDelayMs = 400;
    for (int a = 0; a < 20; a++)
        EXPECT_LE(p.delayMs(a, 0), 400u);
    // Far past any sane attempt count (shift-overflow territory).
    EXPECT_LE(p.delayMs(63, 0), 400u);
}

// --------------------------------------------------------------------
// Address parsing and auth primitives
// --------------------------------------------------------------------

TEST(ServeAddr, ParsesTheWholeGrammar)
{
    ServeAddr a;
    std::string err;

    ASSERT_TRUE(parseServeAddr("unix:/run/dws.sock", a, err)) << err;
    EXPECT_EQ(a.kind, ServeAddr::Kind::Unix);
    EXPECT_EQ(a.path, "/run/dws.sock");

    ASSERT_TRUE(parseServeAddr("/tmp/x.sock", a, err)) << err;
    EXPECT_EQ(a.kind, ServeAddr::Kind::Unix);
    EXPECT_EQ(a.path, "/tmp/x.sock");

    ASSERT_TRUE(parseServeAddr("tcp:localhost:7811", a, err)) << err;
    EXPECT_EQ(a.kind, ServeAddr::Kind::Tcp);
    EXPECT_EQ(a.host, "localhost");
    EXPECT_EQ(a.port, 7811);

    // HOST:PORT with a numeric port is TCP...
    ASSERT_TRUE(parseServeAddr("127.0.0.1:0", a, err)) << err;
    EXPECT_EQ(a.kind, ServeAddr::Kind::Tcp);
    EXPECT_EQ(a.port, 0);

    // ...but a bare name without one is a (relative) Unix path.
    ASSERT_TRUE(parseServeAddr("dws.sock", a, err)) << err;
    EXPECT_EQ(a.kind, ServeAddr::Kind::Unix);
    EXPECT_EQ(a.path, "dws.sock");

    EXPECT_FALSE(parseServeAddr("", a, err));
    EXPECT_FALSE(parseServeAddr("tcp:", a, err));
    EXPECT_FALSE(parseServeAddr("tcp:host", a, err));
    EXPECT_FALSE(parseServeAddr("tcp:host:notaport", a, err));
    EXPECT_FALSE(parseServeAddr("tcp:host:99999", a, err));

    // spec() round-trips.
    ASSERT_TRUE(parseServeAddr("tcp:127.0.0.1:80", a, err));
    ServeAddr b;
    ASSERT_TRUE(parseServeAddr(a.spec(), b, err));
    EXPECT_EQ(b.kind, ServeAddr::Kind::Tcp);
    EXPECT_EQ(b.host, a.host);
    EXPECT_EQ(b.port, a.port);
}

TEST(Auth, ConstantTimeEqCompares)
{
    EXPECT_TRUE(constantTimeEq("", ""));
    EXPECT_TRUE(constantTimeEq("sekrit", "sekrit"));
    EXPECT_FALSE(constantTimeEq("sekrit", "sekrit2"));
    EXPECT_FALSE(constantTimeEq("sekrit", "Sekrit"));
    EXPECT_FALSE(constantTimeEq("a", ""));
}

// --------------------------------------------------------------------
// Deadline-bounded frame I/O
// --------------------------------------------------------------------

TEST(DeadlineIo, IdleConnectionTimesOut)
{
    int sv[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    makeNonBlocking(sv[1]);
    ServeFrame f;
    EXPECT_EQ(readFrameDeadline(sv[1], f, 50, 1000),
              FrameIo::IdleTimeout);
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(DeadlineIo, SlowLorisFrameIsCutOff)
{
    int sv[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    makeNonBlocking(sv[1]);
    // Four bytes of a valid header, then silence: the *frame* deadline
    // (not the idle deadline) must end the wait.
    ASSERT_EQ(write(sv[0], "DWSV", 4), 4);
    ServeFrame f;
    EXPECT_EQ(readFrameDeadline(sv[1], f, 5000, 80), FrameIo::TimedOut);
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(DeadlineIo, WriteToNonDrainingPeerTimesOut)
{
    int sv[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    makeNonBlocking(sv[0]);
    // A reply bigger than any socket buffer, against a peer that never
    // reads: the writer must give up at its deadline, not park forever.
    const std::vector<std::uint8_t> huge(8u << 20, 0x7e);
    EXPECT_EQ(writeFrameDeadline(sv[0], FrameType::Error, huge, 150),
              FrameIo::TimedOut);
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(DeadlineIo, CompleteFrameWithinDeadlineRoundTrips)
{
    int sv[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    makeNonBlocking(sv[0]);
    makeNonBlocking(sv[1]);
    ASSERT_EQ(writeFrameDeadline(sv[0], FrameType::Error,
                                 encodeError("hi"), 1000),
              FrameIo::Ok);
    ServeFrame f;
    ASSERT_EQ(readFrameDeadline(sv[1], f, 1000, 1000), FrameIo::Ok);
    EXPECT_EQ(f.type, FrameType::Error);
    std::string msg;
    ASSERT_TRUE(decodeError(f.payload, msg));
    EXPECT_EQ(msg, "hi");
    ::close(sv[0]);
    ::close(sv[1]);
}

// --------------------------------------------------------------------
// Daemon: TCP listener, auth, overload, drain
// --------------------------------------------------------------------

TEST(ServeTcp, TcpAndUnixEndpointsServeByteIdenticalResults)
{
    TempDir tmp;
    ServeDaemon::Options opts;
    opts.socketPath = tmp.path + "/serve.sock";
    opts.tcpListen = "127.0.0.1:0"; // ephemeral port
    opts.cacheDir = tmp.path + "/cache";
    opts.jobs = 1;
    ServeDaemon daemon(opts);
    std::string err;
    ASSERT_TRUE(daemon.start(err)) << err;
    const std::string tcpEp = daemon.tcpEndpoint();
    ASSERT_EQ(tcpEp.rfind("tcp:127.0.0.1:", 0), 0u) << tcpEp;

    const std::vector<ServeJob> jobs = {
        tinyJob("Short", PolicyConfig::conv(), "Conv")};

    ServeClient viaUnix;
    ASSERT_TRUE(viaUnix.connectTo(opts.socketPath, err)) << err;
    std::vector<ServeResult> cold;
    ASSERT_TRUE(viaUnix.submitBatch(jobs, cold, err)) << err;
    ASSERT_TRUE(cold[0].ok()) << cold[0].error;
    EXPECT_FALSE(cold[0].cached);

    ServeClient viaTcp;
    ASSERT_TRUE(viaTcp.connectTo(tcpEp, err)) << err;
    std::vector<ServeResult> warm;
    ASSERT_TRUE(viaTcp.submitBatch(jobs, warm, err)) << err;
    ASSERT_TRUE(warm[0].ok()) << warm[0].error;
    // Same daemon, same cache: the TCP client gets the warm hit and
    // the exact bytes the Unix client computed...
    EXPECT_TRUE(warm[0].cached);
    EXPECT_EQ(warm[0].fingerprint, cold[0].fingerprint);

    // ...and both match a daemon-less local run.
    const RunResult local = runKernel(
            "Short", SystemConfig::table3(PolicyConfig::conv()),
            KernelScale::Tiny);
    EXPECT_EQ(cold[0].fingerprint, local.stats.fingerprint());
    daemon.stop();
}

TEST(ServeAuth, TokenGatesEverythingButStatus)
{
    TempDir tmp;
    ServeDaemon::Options opts;
    opts.socketPath = tmp.path + "/serve.sock";
    opts.cacheDir = tmp.path + "/cache";
    opts.authToken = "sekrit";
    opts.jobs = 1;
    ServeDaemon daemon(opts);
    std::string err;
    ASSERT_TRUE(daemon.start(err)) << err;

    // Right token: full service.
    {
        ClientOptions copts;
        copts.authToken = "sekrit";
        ServeClient client(copts);
        ASSERT_TRUE(client.connectTo(opts.socketPath, err)) << err;
        std::vector<ServeResult> res;
        ASSERT_TRUE(client.submitBatch(
                {tinyJob("Short", PolicyConfig::conv(), "Conv")}, res,
                err))
                << err;
        EXPECT_TRUE(res[0].ok()) << res[0].error;
    }
    // Wrong token: the handshake itself fails.
    {
        ClientOptions copts;
        copts.authToken = "wrong";
        ServeClient client(copts);
        EXPECT_FALSE(client.connectTo(opts.socketPath, err));
        EXPECT_EQ(client.lastStatus(), RpcStatus::ConnectFailed);
        EXPECT_NE(err.find("auth"), std::string::npos) << err;
    }
    // No token: Status answers (liveness probing needs no secret),
    // work does not.
    {
        ServeClient client;
        ASSERT_TRUE(client.connectTo(opts.socketPath, err)) << err;
        ServeStatus st;
        EXPECT_TRUE(client.status(st, err)) << err;
        std::vector<ServeResult> res;
        EXPECT_FALSE(client.submitBatch(
                {tinyJob("Short", PolicyConfig::conv(), "Conv")}, res,
                err));
        EXPECT_EQ(client.lastStatus(), RpcStatus::Refused);
        EXPECT_NE(err.find("auth"), std::string::npos) << err;
    }
    daemon.stop();
}

TEST(ServeOverload, AdmissionCapRepliesBusyAndConnectionSurvives)
{
    TempDir tmp;
    ServeDaemon::Options opts;
    opts.socketPath = tmp.path + "/serve.sock";
    opts.cacheDir = tmp.path + "/cache";
    opts.jobs = 1;
    opts.admissionCap = 1; // any batch of 2 overflows
    ServeDaemon daemon(opts);
    std::string err;
    ASSERT_TRUE(daemon.start(err)) << err;

    ServeClient client;
    ASSERT_TRUE(client.connectTo(opts.socketPath, err)) << err;
    std::vector<ServeResult> res;
    EXPECT_FALSE(client.submitBatch(
            {tinyJob("Short", PolicyConfig::conv(), "Conv"),
             tinyJob("Merge", PolicyConfig::conv(), "Conv")},
            res, err));
    // Busy is backpressure, not a broken stream: classified, hinted,
    // and the connection stays usable.
    EXPECT_EQ(client.lastStatus(), RpcStatus::Busy);
    EXPECT_GT(client.busyRetryAfterMs(), 0u);
    EXPECT_TRUE(client.connected());
    ASSERT_TRUE(client.submitBatch(
            {tinyJob("Short", PolicyConfig::conv(), "Conv")}, res, err))
            << err;
    EXPECT_TRUE(res[0].ok()) << res[0].error;

    ServeHealth h;
    ASSERT_TRUE(client.health(h, err)) << err;
    EXPECT_EQ(h.admissionCap, 1u);
    EXPECT_GE(h.busyRejected, 1u);
    EXPECT_EQ(h.draining, 0);
    daemon.stop();
}

TEST(ServeOverload, ConnectionCapRefusesWithBusyNotSilence)
{
    TempDir tmp;
    ServeDaemon::Options opts;
    opts.socketPath = tmp.path + "/serve.sock";
    opts.cacheDir = tmp.path + "/cache";
    opts.jobs = 1;
    opts.maxConns = 1;
    ServeDaemon daemon(opts);
    std::string err;
    ASSERT_TRUE(daemon.start(err)) << err;

    ServeClient first;
    ASSERT_TRUE(first.connectTo(opts.socketPath, err)) << err;
    ServeStatus st;
    ASSERT_TRUE(first.status(st, err)) << err; // holds the only slot

    // The second connection is told why, then closed — never left
    // hanging, never dropped without a reply.
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::snprintf(sa.sun_path, sizeof(sa.sun_path), "%s",
                  opts.socketPath.c_str());
    ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr *>(&sa), sizeof sa),
              0);
    ServeFrame f;
    ASSERT_EQ(readFrame(fd, f), FrameIo::Ok);
    EXPECT_EQ(f.type, FrameType::Busy);
    std::string msg;
    std::uint32_t hint = 0;
    ASSERT_TRUE(decodeBusy(f.payload, msg, hint));
    EXPECT_NE(msg.find("connection"), std::string::npos) << msg;
    EXPECT_EQ(readFrame(fd, f), FrameIo::Eof);
    ::close(fd);
    daemon.stop();
}

TEST(ServeDrain, DrainRefusesNewWorkAnswersHealthThenStops)
{
    TempDir tmp;
    ServeDaemon::Options opts;
    opts.socketPath = tmp.path + "/serve.sock";
    opts.cacheDir = tmp.path + "/cache";
    opts.jobs = 1;
    ServeDaemon daemon(opts);
    std::string err;
    ASSERT_TRUE(daemon.start(err)) << err;

    ServeClient client;
    ASSERT_TRUE(client.connectTo(opts.socketPath, err)) << err;
    std::vector<ServeResult> res;
    ASSERT_TRUE(client.submitBatch(
            {tinyJob("Short", PolicyConfig::conv(), "Conv")}, res, err))
            << err;
    ASSERT_TRUE(res[0].ok()) << res[0].error;

    daemon.beginDrain();
    // New work is refused with Busy("draining")...
    EXPECT_FALSE(client.submitBatch(
            {tinyJob("Merge", PolicyConfig::conv(), "Conv")}, res,
            err));
    EXPECT_EQ(client.lastStatus(), RpcStatus::Busy);
    EXPECT_NE(err.find("drain"), std::string::npos) << err;
    // ...while health/status stay answerable for observability.
    ServeHealth h;
    ASSERT_TRUE(client.health(h, err)) << err;
    EXPECT_EQ(h.draining, 1);

    daemon.drainAndStop(); // no in-flight jobs: returns promptly
    ServeClient after;
    EXPECT_FALSE(after.connectTo(opts.socketPath, err));
}

// --------------------------------------------------------------------
// The fault proxy, class by class
// --------------------------------------------------------------------

/** Daemon behind a proxy faulting the first `faultConns` connections. */
struct ProxiedDaemon
{
    explicit ProxiedDaemon(NetFaultClass cls, std::size_t faultConns = 1)
    {
        ServeDaemon::Options opts;
        opts.socketPath = tmp.path + "/serve.sock";
        opts.cacheDir = tmp.path + "/cache";
        opts.jobs = 1;
        daemon = std::make_unique<ServeDaemon>(opts);
        std::string err;
        started = daemon->start(err);
        EXPECT_TRUE(started) << err;

        FaultProxy::Options popts;
        popts.upstream = "unix:" + opts.socketPath;
        popts.cls = cls;
        popts.faultConns = faultConns;
        popts.seed = 3;
        popts.maxWaitMs = 5000;
        proxy = std::make_unique<FaultProxy>(popts);
        started = started && proxy->start(err);
        EXPECT_TRUE(started) << err;
    }
    ~ProxiedDaemon()
    {
        proxy->stop();
        daemon->stop();
    }

    TempDir tmp;
    std::unique_ptr<ServeDaemon> daemon;
    std::unique_ptr<FaultProxy> proxy;
    bool started = false;
};

TEST(FaultProxy, CorruptByteIsDetectedThenCleanConnectionServes)
{
    ProxiedDaemon fx(NetFaultClass::CorruptByte);
    ASSERT_TRUE(fx.started);
    const std::vector<ServeJob> jobs = {
        tinyJob("Short", PolicyConfig::conv(), "Conv")};
    std::string err;

    // Connection 0 is faulted: the flipped byte must be *detected*
    // (checksum), never decoded into a wrong table.
    ServeClient c0;
    ASSERT_TRUE(c0.connectTo(fx.proxy->endpoint(), err)) << err;
    std::vector<ServeResult> res;
    EXPECT_FALSE(c0.submitBatch(jobs, res, err));
    EXPECT_EQ(c0.lastStatus(), RpcStatus::ProtocolError);

    // Connection 1 is clean; the reply matches a daemon-less run.
    ServeClient c1;
    ASSERT_TRUE(c1.connectTo(fx.proxy->endpoint(), err)) << err;
    ASSERT_TRUE(c1.submitBatch(jobs, res, err)) << err;
    ASSERT_TRUE(res[0].ok()) << res[0].error;
    const RunResult local = runKernel(
            "Short", SystemConfig::table3(PolicyConfig::conv()),
            KernelScale::Tiny);
    EXPECT_EQ(res[0].fingerprint, local.stats.fingerprint());
    EXPECT_EQ(fx.proxy->connectionsFaulted(), 1u);
    EXPECT_GE(fx.proxy->connectionsSeen(), 2u);
}

TEST(FaultProxy, StallPastDeadlineTripsTheRpcTimeout)
{
    ProxiedDaemon fx(NetFaultClass::StallPastDeadline);
    ASSERT_TRUE(fx.started);
    ClientOptions copts;
    copts.rpcTimeoutMs = 200;
    ServeClient client(copts);
    std::string err;
    ASSERT_TRUE(client.connectTo(fx.proxy->endpoint(), err)) << err;
    std::vector<ServeResult> res;
    EXPECT_FALSE(client.submitBatch(
            {tinyJob("Short", PolicyConfig::conv(), "Conv")}, res,
            err));
    EXPECT_EQ(client.lastStatus(), RpcStatus::TimedOut);
}

TEST(FaultProxy, MidFrameAndTruncatedRepliesAreProtocolErrors)
{
    for (const NetFaultClass cls : {NetFaultClass::MidFrameDisconnect,
                                    NetFaultClass::TruncatedReply}) {
        ProxiedDaemon fx(cls);
        ASSERT_TRUE(fx.started);
        ServeClient client;
        std::string err;
        ASSERT_TRUE(client.connectTo(fx.proxy->endpoint(), err)) << err;
        std::vector<ServeResult> res;
        EXPECT_FALSE(client.submitBatch(
                {tinyJob("Short", PolicyConfig::conv(), "Conv")}, res,
                err))
                << netFaultClassName(cls);
        EXPECT_EQ(client.lastStatus(), RpcStatus::ProtocolError)
                << netFaultClassName(cls);
        EXPECT_FALSE(client.connected());
    }
}

TEST(FaultProxy, BusyStormIsClassifiedBusy)
{
    ProxiedDaemon fx(NetFaultClass::BusyStorm);
    ASSERT_TRUE(fx.started);
    ServeClient client;
    std::string err;
    ASSERT_TRUE(client.connectTo(fx.proxy->endpoint(), err)) << err;
    std::vector<ServeResult> res;
    EXPECT_FALSE(client.submitBatch(
            {tinyJob("Short", PolicyConfig::conv(), "Conv")}, res,
            err));
    EXPECT_EQ(client.lastStatus(), RpcStatus::Busy);
    EXPECT_EQ(client.busyRetryAfterMs(), 10u);
}

TEST(FaultProxy, ExecutorRetriesThroughTransientFaultToExactResult)
{
    ProxiedDaemon fx(NetFaultClass::MidFrameDisconnect, 1);
    ASSERT_TRUE(fx.started);
    const SweepJob job{"Short",
                       SystemConfig::table3(PolicyConfig::conv()),
                       KernelScale::Tiny, "Conv"};
    SweepExecutor local(1);
    const RunStats localStats = local.submit(job).get().run.stats;

    SweepExecutor ex(1);
    ServeConfig cfg;
    cfg.endpoint = fx.proxy->endpoint();
    cfg.connectTimeoutMs = 2000;
    cfg.rpcTimeoutMs = 2000;
    cfg.retry.maxAttempts = 4;
    cfg.retry.baseDelayMs = 5;
    cfg.retry.maxDelayMs = 50;
    ex.setServe(cfg);
    const JobResult r = ex.submit(job).get();
    ASSERT_TRUE(r.ok()) << r.error;
    // Retried to success, not degraded — and the replay over a fresh
    // connection is bit-identical to the daemon-less run.
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.run.stats.fingerprint(), localStats.fingerprint());
    EXPECT_GE(fx.proxy->connectionsFaulted(), 1u);
}

TEST(NetChaos, SingleClassCampaignPassesBothModes)
{
    TempDir tmp;
    NetChaosOptions opt;
    opt.classes = {NetFaultClass::ConnRefused};
    opt.workDir = tmp.path + "/chaos";
    opt.kernels = {"Short"};
    opt.policies = {"Conv"};
    // Generous RPC deadline: sanitizer/Debug builds on a loaded 1-core
    // box can take >500ms to answer even a Status probe, and a spurious
    // timeout turns the transient cell into a degraded one.
    opt.rpcTimeoutMs = 3000;
    opt.retryBaseDelayMs = 5;
    const NetChaosReport report = runNetChaosCampaign(opt);
    ASSERT_EQ(report.cells.size(), 2u);
    EXPECT_TRUE(report.allPassed())
            << report.cells[0].detail << " / "
            << report.cells[1].detail;
    // Transient mode retried to success (nothing degraded);
    // persistent mode degraded everything to correct local runs.
    EXPECT_EQ(report.cells[0].mode, "transient");
    EXPECT_EQ(report.cells[0].degraded, 0);
    EXPECT_EQ(report.cells[1].mode, "persistent");
    EXPECT_EQ(report.cells[1].degraded, report.cells[1].jobs);
}

// --------------------------------------------------------------------
// Result-cache crash safety
// --------------------------------------------------------------------

TEST(ResultCacheCrash, OrphanedTmpFilesAreSweptAtOpen)
{
    TempDir tmp;
    const std::string dir = tmp.path + "/cache";
    fs::create_directories(dir);
    // A daemon killed between write and rename leaves exactly this.
    const std::string orphan = dir + "/00000000deadbeef.dwsr.tmp";
    {
        std::ofstream f(orphan);
        f << "half-written entry";
    }
    ResultCache cache(dir);
    std::string err;
    ASSERT_TRUE(cache.open(err)) << err;
    EXPECT_FALSE(fs::exists(orphan));
    EXPECT_EQ(cache.counters().entries, 0u);
}

} // namespace
} // namespace dws
