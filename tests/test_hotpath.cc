/**
 * @file
 * Tests for the hot-path machinery added with the event-driven core:
 * the scheduler's incrementally maintained ready list, the SimdGroup
 * arena, the pooled barrier allocator, and an end-to-end run with
 * every-cycle invariant audits (which include the ready-list and
 * state-census checks).
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "wpu/arena.hh"
#include "wpu/frame.hh"
#include "wpu/scheduler.hh"

namespace dws {
namespace {

SimdGroup
mkGroup(GroupId id, WarpId warp)
{
    SimdGroup g;
    g.id = id;
    g.warp = warp;
    g.mask = 1;
    g.state = GroupState::Ready;
    return g;
}

// --- ready list -------------------------------------------------------

TEST(ReadyList, SlotGrantInsertsAndReleaseRemoves)
{
    Scheduler s(1);
    SimdGroup a = mkGroup(0, 0), b = mkGroup(1, 0);
    s.requestSlot(&a);
    s.requestSlot(&b); // queued: no slot, so not ready-listed
    ASSERT_EQ(s.readyList().size(), 1u);
    EXPECT_EQ(s.readyList()[0], &a);
    EXPECT_TRUE(a.inReadyList);
    EXPECT_FALSE(b.inReadyList);
    // Releasing a's slot grants it to b, swapping list membership.
    s.releaseSlot(&a);
    ASSERT_EQ(s.readyList().size(), 1u);
    EXPECT_EQ(s.readyList()[0], &b);
    EXPECT_FALSE(a.inReadyList);
    EXPECT_TRUE(b.inReadyList);
}

TEST(ReadyList, TracksStateTransitions)
{
    Scheduler s(4);
    SimdGroup a = mkGroup(0, 0), b = mkGroup(1, 0), c = mkGroup(2, 1);
    s.requestSlot(&a);
    s.requestSlot(&b);
    s.requestSlot(&c);
    ASSERT_EQ(s.readyList().size(), 3u);

    b.state = GroupState::WaitMem;
    s.updateReady(&b);
    ASSERT_EQ(s.readyList().size(), 2u);
    EXPECT_FALSE(b.inReadyList);

    // WaitRetry counts as schedulable; re-insert lands in id order.
    b.state = GroupState::WaitRetry;
    s.updateReady(&b);
    ASSERT_EQ(s.readyList().size(), 3u);
    EXPECT_EQ(s.readyList()[0]->id, 0);
    EXPECT_EQ(s.readyList()[1]->id, 1);
    EXPECT_EQ(s.readyList()[2]->id, 2);

    // Idempotent: re-filing a member keeps exactly one entry.
    s.updateReady(&b);
    EXPECT_EQ(s.readyList().size(), 3u);
}

TEST(ReadyList, AnyIssuableRespectsReadyAt)
{
    Scheduler s(2);
    SimdGroup a = mkGroup(0, 0);
    s.requestSlot(&a);
    a.readyAt = 5;
    EXPECT_FALSE(s.anyIssuableAt(4));
    EXPECT_TRUE(s.anyIssuableAt(5));
    a.state = GroupState::WaitReconv;
    s.updateReady(&a);
    EXPECT_FALSE(s.anyIssuableAt(5));
}

TEST(ReadyList, PickScansOnlyReadyGroups)
{
    Scheduler s(4);
    SimdGroup a = mkGroup(0, 0), b = mkGroup(1, 1), c = mkGroup(2, 2);
    s.requestSlot(&a);
    s.requestSlot(&b);
    s.requestSlot(&c);
    b.state = GroupState::WaitMem;
    s.updateReady(&b);
    EXPECT_EQ(s.pick(0), &a);
    EXPECT_EQ(s.pick(0), &c); // b not considered
    EXPECT_EQ(s.pick(0), &a); // wrapped
}

TEST(ReadyListDeathTest, DesyncedMembershipFlagPanics)
{
    Scheduler s(2);
    SimdGroup a = mkGroup(0, 0);
    a.inReadyList = true; // forged: never inserted
    EXPECT_DEATH(s.updateReady(&a), "inReadyList");
}

// --- group arena ------------------------------------------------------

TEST(GroupArena, RecyclesStorage)
{
    GroupArena arena;
    SimdGroup *g = arena.acquire();
    EXPECT_EQ(arena.allocated(), 1u);
    g->id = 7;
    g->mask = 0xf;
    g->state = GroupState::WaitMem;
    g->frames.push_back(Frame{4, 8, 0xf});
    g->pending.active = true;
    g->pending.lines.push_back(0x100);

    arena.release(g);
    EXPECT_EQ(arena.freeCount(), 1u);

    // Same storage comes back, fully reset but with vector capacity.
    SimdGroup *g2 = arena.acquire();
    EXPECT_EQ(g2, g);
    EXPECT_EQ(arena.allocated(), 1u);
    EXPECT_EQ(arena.freeCount(), 0u);
    EXPECT_EQ(g2->id, -1);
    EXPECT_EQ(g2->mask, 0u);
    EXPECT_EQ(g2->state, GroupState::Ready);
    EXPECT_TRUE(g2->frames.empty());
    EXPECT_FALSE(g2->pending.active);
    EXPECT_TRUE(g2->pending.lines.empty());
    EXPECT_GE(g2->frames.capacity(), 1u);
}

TEST(GroupArena, AddressesStayStableAcrossGrowth)
{
    GroupArena arena;
    std::vector<SimdGroup *> all;
    for (int i = 0; i < 100; i++) {
        all.push_back(arena.acquire());
        all.back()->id = i;
    }
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(all[static_cast<size_t>(i)]->id, i);
}

// --- barrier pool -----------------------------------------------------

TEST(BarrierPool, ReusesControlBlocks)
{
    auto pool = std::make_shared<PoolState>();
    auto b1 = std::allocate_shared<ReconvBarrier>(
            PoolAlloc<ReconvBarrier>(pool));
    EXPECT_EQ(pool->served, 1u);
    EXPECT_EQ(pool->reused, 0u);
    b1.reset(); // block returns to the freelist
    auto b2 = std::allocate_shared<ReconvBarrier>(
            PoolAlloc<ReconvBarrier>(pool));
    EXPECT_EQ(pool->served, 2u);
    EXPECT_EQ(pool->reused, 1u);
}

TEST(BarrierPool, SurvivesOwnerDroppingItsHandle)
{
    // The control block holds a PoolAlloc copy, which keeps the shared
    // PoolState alive: a barrier outliving its WPU must still be able
    // to return its block on destruction (ASan would flag this).
    BarrierRef survivor;
    {
        auto pool = std::make_shared<PoolState>();
        survivor = std::allocate_shared<ReconvBarrier>(
                PoolAlloc<ReconvBarrier>(pool));
        survivor->pc = 42;
    } // the "owner's" handle is gone
    EXPECT_EQ(survivor->pc, 42);
    survivor.reset(); // deallocates through the surviving PoolState
}

// --- end-to-end with every-cycle audits -------------------------------

TEST(HotPathAudits, EveryCycleInvariantAuditsPassUnderSubdivision)
{
    // checkInvariants=1 runs the full audit (including the ready-list
    // and state-census checks) every cycle, and forces the always-tick
    // path so lazily accounted WPUs are still audited.
    SystemConfig cfg = SystemConfig::table3(PolicyConfig::reviveSplit());
    cfg.checkInvariants = 1;
    EXPECT_TRUE(runKernel("SVM", cfg, KernelScale::Tiny).valid);

    SystemConfig slip = SystemConfig::table3(PolicyConfig::adaptiveSlip());
    slip.checkInvariants = 1;
    EXPECT_TRUE(runKernel("Short", slip, KernelScale::Tiny).valid);
}

} // namespace
} // namespace dws
