/**
 * @file
 * Shared test helpers: an ad-hoc Kernel wrapper so tests can run
 * arbitrary IR programs through the full System.
 */

#ifndef DWS_TESTS_TEST_UTIL_HH
#define DWS_TESTS_TEST_UTIL_HH

#include <functional>
#include <utility>

#include "harness/system.hh"
#include "kernels/kernel.hh"

namespace dws {

/** A Kernel built from a raw Program and optional memory initializer. */
class TestKernel : public Kernel
{
  public:
    using InitFn = std::function<void(Memory &)>;

    TestKernel(Program prog, std::uint64_t memBytes = 1 << 20,
               InitFn init = nullptr)
        : Kernel(KernelParams{}), prog(std::move(prog)), bytes(memBytes),
          init(std::move(init))
    {}

    std::string name() const override { return prog.name(); }
    std::string description() const override { return "test kernel"; }
    Program buildProgram() const override { return prog; }
    std::uint64_t memBytes() const override { return bytes; }

    void
    initMemory(Memory &mem) const override
    {
        mem.resize(bytes);
        if (init)
            init(mem);
    }

    bool validate(const Memory &) const override { return true; }

  private:
    Program prog;
    std::uint64_t bytes;
    InitFn init;
};

/** @return a small single-WPU configuration for unit tests. */
inline SystemConfig
testConfig(int width = 4, int warps = 2, int wpus = 1)
{
    SystemConfig cfg;
    cfg.numWpus = wpus;
    cfg.wpu.simdWidth = width;
    cfg.wpu.numWarps = warps;
    cfg.wpu.schedSlots = 2 * warps;
    cfg.wpu.wstEntries = 16;
    cfg.maxCycles = 10'000'000;
    return cfg;
}

} // namespace dws

#endif // DWS_TESTS_TEST_UTIL_HH
