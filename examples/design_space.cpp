/**
 * @file
 * Design-space exploration: a scenario an architect would run — given
 * an area budget expressed as total lane count, is it better to build
 * few wide warps with DWS or many narrow warps without it?
 * (This is the question behind the paper's Figure 18.)
 *
 * Sweeps (width x warps) shapes with the same lane budget over two
 * benchmarks with opposite personalities (Filter: memory-divergent,
 * Short: branch-divergent) and prints the winner per shape.
 *
 *   $ ./examples/design_space
 */

#include <cstdio>

#include "harness/runner.hh"
#include "sim/logging.hh"

using namespace dws;

namespace {

RunStats
run(const std::string &bench, const PolicyConfig &pol, int width,
    int warps)
{
    SystemConfig cfg = SystemConfig::table3(pol);
    cfg.wpu.simdWidth = width;
    cfg.wpu.numWarps = warps;
    cfg.wpu.schedSlots = 2 * warps;
    cfg.wpu.dcache.banks = width;
    return runKernel(bench, cfg, KernelScale::Tiny).stats;
}

} // namespace

int
main()
{
    setQuiet(true);

    // Equal lane budget: width x warps = 32 lanes of register file.
    const std::vector<std::pair<int, int>> shapes = {
        {4, 8}, {8, 4}, {16, 2}, {32, 1},
    };

    for (const char *bench : {"Filter", "Short"}) {
        std::printf("%s (equal 32-lane budget per WPU):\n", bench);
        std::printf("  %-10s %14s %14s %10s\n", "shape", "conv cycles",
                    "dws cycles", "dws win");
        double bestConv = 0, bestDws = 0;
        std::string bestConvShape, bestDwsShape;
        for (const auto &[width, warps] : shapes) {
            const RunStats conv =
                    run(bench, PolicyConfig::conv(), width, warps);
            const RunStats dws =
                    run(bench, PolicyConfig::reviveSplit(), width, warps);
            std::printf("  %2dx%-7d %14llu %14llu %9.2fx\n", width,
                        warps, (unsigned long long)conv.cycles,
                        (unsigned long long)dws.cycles,
                        double(conv.cycles) / double(dws.cycles));
            if (bestConv == 0 || double(conv.cycles) < bestConv) {
                bestConv = double(conv.cycles);
                bestConvShape = std::to_string(width) + "x" +
                                std::to_string(warps);
            }
            if (bestDws == 0 || double(dws.cycles) < bestDws) {
                bestDws = double(dws.cycles);
                bestDwsShape = std::to_string(width) + "x" +
                               std::to_string(warps);
            }
        }
        std::printf("  best conventional shape: %s; best DWS shape: %s "
                    "(%.2fx vs best conv)\n\n",
                    bestConvShape.c_str(), bestDwsShape.c_str(),
                    bestConv / bestDws);
    }
    std::printf("The paper's Figure 18 finding: under a fixed budget, "
                "a few wide warps with DWS\ncompete with (or beat) many "
                "narrow warps without it, while also needing\nfewer "
                "instruction sequencers.\n");
    return 0;
}
