/**
 * @file
 * Divergence explorer: a domain-specific scenario showing how the
 * library is used to *study* a workload's divergence behavior, the way
 * the paper's Table 1 and Figure 14 do.
 *
 * The scenario is a sparse-graph relaxation step (the kind of kernel a
 * graph-analytics user would bring): each thread relaxes the edges of
 * its vertices; vertex degrees are skewed, so lanes fall out of step
 * (branch divergence on the degree loop) and neighbor gathers touch
 * scattered lines (memory divergence).
 *
 * The program prints the divergence characterization and the
 * per-thread miss map under Conv, then compares all DWS policies.
 *
 *   $ ./examples/divergence_explorer
 */

#include <cstdio>

#include "harness/system.hh"
#include "isa/builder.hh"
#include "kernels/kernel.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace dws;

namespace {

/** CSR-style sparse relaxation kernel. */
class GraphKernel : public Kernel
{
  public:
    GraphKernel() : Kernel(KernelParams{}) { buildGraph(); }

    static constexpr int kVertices = 4096;
    static constexpr int kMaxDegree = 12;

    std::string name() const override { return "graph-relax"; }
    std::string description() const override
    {
        return "skewed-degree sparse relaxation (CSR)";
    }

    // Memory layout (words):
    //   [0, V)          row offsets (V+1 entries, last at index V)
    //   [V+1, V+1+E)    edge targets
    //   [eBase+E, ...)  vertex values, then output ranks
    std::uint64_t
    memBytes() const override
    {
        return static_cast<std::uint64_t>(
                       (kVertices + 1 + edges.size() + 2 * kVertices +
                        64)) * kWordBytes;
    }

    Program
    buildProgram() const override
    {
        const std::int64_t offBase = 0;
        const std::int64_t edgeBase =
                (kVertices + 1) * std::int64_t(kWordBytes);
        const std::int64_t valBase =
                edgeBase + std::int64_t(edges.size()) * kWordBytes;
        const std::int64_t outBase =
                valBase + kVertices * std::int64_t(kWordBytes);

        KernelBuilder b;
        emitBlockRange(b, 2, 3, kVertices);
        b.mov(4, 2); // v = lo
        auto vLoop = b.newLabel();
        auto vDone = b.newLabel();
        b.bind(vLoop);
        b.sle(16, 3, 4);
        b.br(16, vDone);
        // row range [r5, r6)
        b.muli(7, 4, kWordBytes);
        b.ld(5, 7, offBase);
        b.ld(6, 7, offBase + kWordBytes);
        b.movi(8, 0); // acc
        auto eLoop = b.newLabel();
        auto eDone = b.newLabel();
        b.bind(eLoop);
        b.sle(16, 6, 5);
        b.br(16, eDone);
        b.muli(9, 5, kWordBytes);
        b.ld(10, 9, edgeBase);    // neighbor id
        b.muli(10, 10, kWordBytes);
        b.ld(11, 10, valBase);    // gather neighbor value
        b.add(8, 8, 11);
        b.addi(5, 5, 1);
        b.jmp(eLoop);
        b.bind(eDone);
        b.st(7, 8, outBase);
        b.addi(4, 4, 1);
        b.jmp(vLoop);
        b.bind(vDone);
        b.halt();
        return b.build("graph-relax");
    }

    void
    initMemory(Memory &mem) const override
    {
        mem.resize(memBytes());
        for (int v = 0; v <= kVertices; v++)
            mem.writeWord(static_cast<std::uint64_t>(v),
                          offsets[static_cast<size_t>(v)]);
        const std::uint64_t eBase = kVertices + 1;
        for (size_t e = 0; e < edges.size(); e++)
            mem.writeWord(eBase + e, edges[e]);
        Rng rng(17);
        const std::uint64_t vBase = eBase + edges.size();
        for (int v = 0; v < kVertices; v++)
            mem.writeWord(vBase + static_cast<std::uint64_t>(v),
                          rng.nextRange(0, 1000));
    }

    bool validate(const Memory &) const override { return true; }

  private:
    void
    buildGraph()
    {
        Rng rng(23);
        offsets.push_back(0);
        for (int v = 0; v < kVertices; v++) {
            // Power-law-ish skew: most vertices small, a few heavy.
            const int degree =
                    (rng.nextBounded(16) == 0)
                    ? kMaxDegree
                    : static_cast<int>(rng.nextRange(0, 3));
            for (int e = 0; e < degree; e++)
                edges.push_back(rng.nextBounded(kVertices));
            offsets.push_back(static_cast<std::int64_t>(edges.size()));
        }
    }

    std::vector<std::int64_t> offsets;
    std::vector<std::int64_t> edges;
};

} // namespace

int
main()
{
    setQuiet(true);
    GraphKernel kernel;

    // --- characterize under the conventional policy ----------------
    SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    System sys(cfg, kernel);
    RunStats conv = sys.run();

    std::uint64_t branches = 0, divBranches = 0, accesses = 0,
                  divAccesses = 0;
    for (const auto &w : conv.wpus) {
        branches += w.branches;
        divBranches += w.divergentBranches;
        accesses += w.memAccesses;
        divAccesses += w.divergentAccesses;
    }
    std::printf("graph-relax characterization (Conv):\n");
    std::printf("  %llu cycles, %.0f%% memory stall\n",
                (unsigned long long)conv.cycles,
                100 * conv.memStallFrac());
    std::printf("  divergent branches: %.1f%% of %llu\n",
                100.0 * double(divBranches) / double(branches),
                (unsigned long long)branches);
    std::printf("  divergent accesses: %.1f%% of %llu\n\n",
                100.0 * double(divAccesses) / double(accesses),
                (unsigned long long)accesses);

    std::printf("per-thread miss map, WPU 0 (0-9 scale):\n");
    const auto &misses = conv.wpus[0].threadMisses;
    std::uint64_t maxMiss = 1;
    for (auto m : misses)
        maxMiss = std::max(maxMiss, m);
    for (int w = 0; w < cfg.wpu.numWarps; w++) {
        std::printf("  warp %d  ", w);
        for (int lane = 0; lane < cfg.wpu.simdWidth; lane++)
            std::printf("%llu", (unsigned long long)(
                    misses[static_cast<size_t>(
                            w * cfg.wpu.simdWidth + lane)] * 9 /
                    maxMiss));
        std::printf("\n");
    }

    // --- compare policies --------------------------------------------
    std::printf("\npolicy comparison:\n");
    const std::vector<PolicyConfig> policies = {
        PolicyConfig::conv(),
        PolicyConfig::branchOnly(),
        PolicyConfig::reviveMemOnly(),
        PolicyConfig::reviveSplit(),
        PolicyConfig::adaptiveSlip(),
    };
    for (const auto &pol : policies) {
        SystemConfig c = SystemConfig::table3(pol);
        System s(c, kernel);
        const RunStats r = s.run();
        std::printf("  %-22s %8llu cycles  speedup %.2fx  stall %.0f%%\n",
                    pol.name().c_str(), (unsigned long long)r.cycles,
                    double(conv.cycles) / double(r.cycles),
                    100 * r.memStallFrac());
    }
    return 0;
}
