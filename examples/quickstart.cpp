/**
 * @file
 * Quickstart: build a tiny kernel with the public API, run it on the
 * paper's Table 3 system under the conventional policy and under
 * DWS.ReviveSplit, and compare the results.
 *
 *   $ ./examples/quickstart
 *
 * Walks through the three core steps every user of the library takes:
 *   1. author an IR program with KernelBuilder (or use a built-in
 *      benchmark from kernels/),
 *   2. configure a SystemConfig (policy + machine shape),
 *   3. run a System and inspect RunStats.
 */

#include <cstdio>

#include "harness/system.hh"
#include "isa/builder.hh"
#include "isa/disasm.hh"
#include "kernels/kernel.hh"
#include "sim/logging.hh"

using namespace dws;

namespace {

/**
 * A tiny divergent kernel: every thread walks a pointer chain through
 * a table (memory divergence) and doubles odd values (branch
 * divergence), then stores a checksum.
 */
class ChaseKernel : public Kernel
{
  public:
    ChaseKernel() : Kernel(KernelParams{}) {}

    static constexpr int kTableWords = 8192;
    static constexpr int kSteps = 64;

    std::string name() const override { return "chase"; }
    std::string description() const override
    {
        return "pointer chase with data-dependent branching";
    }

    Program
    buildProgram() const override
    {
        KernelBuilder b;
        auto loop = b.newLabel();
        auto done = b.newLabel();
        auto odd = b.newLabel();
        auto join = b.newLabel();
        b.muli(2, 0, 131);              // start index from thread id
        b.movi(3, kTableWords);
        b.rem(2, 2, 3);
        b.movi(4, 0);                   // step counter
        b.movi(5, 0);                   // checksum
        b.bind(loop);
        b.slti(6, 4, kSteps);
        b.seq(6, 6, 30);                // r30 stays zero
        b.br(6, done);
        b.muli(7, 2, kWordBytes);
        b.ld(8, 7, 0);                  // gather table[idx]
        b.andi(9, 8, 1);
        b.br(9, odd);
        b.add(5, 5, 8);                 // even: accumulate
        b.jmp(join);
        b.bind(odd);
        b.muli(8, 8, 2);                // odd: double, then accumulate
        b.add(5, 5, 8);
        b.bind(join);
        b.movi(3, kTableWords);
        b.rem(2, 8, 3);                 // next index is data dependent
        b.addi(4, 4, 1);
        b.jmp(loop);
        b.bind(done);
        b.muli(10, 0, kWordBytes);
        b.st(10, 5, kTableWords * kWordBytes);
        b.halt();
        return b.build("chase");
    }

    std::uint64_t
    memBytes() const override
    {
        return (kTableWords + 4096) * kWordBytes;
    }

    void
    initMemory(Memory &mem) const override
    {
        mem.resize(memBytes());
        Rng rng(7);
        for (int i = 0; i < kTableWords; i++)
            mem.writeWord(static_cast<std::uint64_t>(i),
                          rng.nextRange(0, 1 << 20));
    }

    bool validate(const Memory &) const override { return true; }
};

RunStats
runWith(const PolicyConfig &policy, const Kernel &kernel)
{
    SystemConfig cfg = SystemConfig::table3(policy);
    System sys(cfg, kernel);
    return sys.run();
}

} // namespace

int
main()
{
    setQuiet(true);
    ChaseKernel kernel;

    // Show the user what the kernel compiles to (first lines).
    const Program prog = kernel.buildProgram();
    std::printf("kernel '%s': %d instructions; listing head:\n",
                prog.name().c_str(), prog.size());
    const std::string listing = disasm(prog);
    std::printf("%.*s...\n\n", 420, listing.c_str());

    const RunStats conv = runWith(PolicyConfig::conv(), kernel);
    const RunStats dws = runWith(PolicyConfig::reviveSplit(), kernel);

    std::printf("conventional: %s\n", conv.summary().c_str());
    std::printf("dws.revive  : %s\n", dws.summary().c_str());
    std::printf("\nspeedup %.2fx; memory-stall %.0f%% -> %.0f%%; "
                "issued SIMD width %.1f -> %.1f\n",
                double(conv.cycles) / double(dws.cycles),
                100 * conv.memStallFrac(), 100 * dws.memStallFrac(),
                conv.avgSimdWidth(), dws.avgSimdWidth());
    return 0;
}
