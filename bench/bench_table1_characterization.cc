/**
 * @file
 * Table 1 reproduction: characterization of branch- and
 * memory-divergence frequency per benchmark under the conventional
 * policy on the Table 3 system.
 *
 * Rows (as in the paper):
 *   - average (warp) instruction count between conditional branches
 *   - percentage of divergent branches
 *   - average instruction count between accesses that miss
 *   - average instruction count between divergent memory accesses
 *   - percentage of divergent memory accesses (among missing accesses)
 */

#include "bench_util.hh"

using namespace dws;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts =
            parseBenchArgs(argc, argv, KernelScale::Tiny);

    banner("Table 1: divergence characterization (Conv policy)",
           "instr/branch 9-59; div branches 0-22%; instr/miss 5-47; "
           "div accesses 60-88%");

    const SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    const std::vector<std::string> &names =
            opts.benchmarks.empty() ? kernelNames() : opts.benchmarks;

    SweepExecutor ex(opts.jobs);
    applyBenchOptions(ex, opts);
    const std::vector<JobResult> results =
            runBenchmarks(ex, "Conv", cfg, opts);
    std::map<std::string, const RunResult *> byName;
    for (size_t i = 0; i < names.size(); i++)
        byName[names[i]] = &results[i].run;

    TextTable t;
    t.header({"metric", "FFT", "Filter", "HotSpot", "LU", "Merge",
              "Short", "KMeans", "SVM"});
    const std::vector<std::string> order = {
        "FFT", "Filter", "HotSpot", "LU", "Merge", "Short", "KMeans",
        "SVM"};

    std::vector<double> instrPerBranch, divBranchPct, instrPerMiss,
            instrPerDivMiss, divAccessPct;
    for (const auto &name : order) {
        if (!opts.benchmarks.empty() &&
            std::find(names.begin(), names.end(), name) == names.end()) {
            instrPerBranch.push_back(0);
            divBranchPct.push_back(0);
            instrPerMiss.push_back(0);
            instrPerDivMiss.push_back(0);
            divAccessPct.push_back(0);
            continue;
        }
        const RunResult &r = *byName.at(name);
        std::uint64_t issued = 0, branches = 0, divBranches = 0;
        std::uint64_t misses = 0, divAccesses = 0;
        for (const auto &w : r.stats.wpus) {
            issued += w.issuedInstrs;
            branches += w.branches;
            divBranches += w.divergentBranches;
            misses += w.missAccesses;
            divAccesses += w.divergentAccesses;
        }
        instrPerBranch.push_back(branches ? double(issued) /
                                                    double(branches) : 0);
        divBranchPct.push_back(branches ? 100.0 * double(divBranches) /
                                                  double(branches) : 0);
        instrPerMiss.push_back(misses ? double(issued) / double(misses)
                                      : 0);
        instrPerDivMiss.push_back(
                divAccesses ? double(issued) / double(divAccesses) : 0);
        divAccessPct.push_back(misses ? 100.0 * double(divAccesses) /
                                                double(misses) : 0);
    }

    t.numericRow("instrs between branches", instrPerBranch, 1);
    t.numericRow("divergent branches (%)", divBranchPct, 1);
    t.numericRow("instrs between misses", instrPerMiss, 1);
    t.numericRow("instrs between div. accesses", instrPerDivMiss, 1);
    t.numericRow("divergent accesses (%)", divAccessPct, 1);
    t.print();

    std::printf("\nNote: Merge's select is compiled branch-free "
                "(conditional moves), so its divergent-branch share is "
                "lower than the paper's hand-counted 13%%.\n");
    maybeWriteJson(ex, opts);
    return benchExitCode(ex);
}
