/**
 * @file
 * Figure 18 reproduction: Conv vs DWS vs Slip.BranchBypass across
 * SIMD width x multi-threading depth, under different D-cache setups.
 * All times are normalized to the single-warp conventional WPU of the
 * same cache setup (the paper normalizes to single-threaded Conv).
 *
 * The paper's findings: DWS works especially well for wide SIMD; a few
 * wide warps with DWS beat many narrow warps without it; with large,
 * highly associative D-caches the DWS advantage disappears.
 *
 * Default runs cache setups (a) 8-way 32 KB and (c) 8-way 256 KB;
 * --full adds the fully associative variants (b) and (d).
 */

#include <cstring>

#include "bench_util.hh"

using namespace dws;

namespace {

double
hmeanCycles(const PolicyRun &run)
{
    std::vector<double> v;
    for (const auto &[name, s] : run.stats)
        v.push_back(double(s.cycles));
    return harmonicMean(v);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts =
            parseBenchArgs(argc, argv, KernelScale::Tiny);
    bool full = false;
    for (int i = 1; i < argc; i++)
        if (std::strcmp(argv[i], "--full") == 0)
            full = true;

    banner("Figure 18: Conv / DWS / Slip.BB over width x depth and "
           "cache setups (norm. speedup vs 8-wide 1-warp Conv per setup)",
           "DWS shines for wide SIMD; large associative caches erase "
           "the advantage");

    struct Setup
    {
        const char *label;
        std::uint64_t size;
        int assoc;
    };
    std::vector<Setup> setups = {
        {"(a) 8-way 32KB", 32 * 1024, 8},
        {"(c) 8-way 256KB", 256 * 1024, 8},
    };
    if (full) {
        setups.push_back({"(b) fully-assoc 32KB", 32 * 1024, 0});
        setups.push_back({"(d) fully-assoc 256KB", 256 * 1024, 0});
    }

    const std::vector<std::pair<int, int>> shapes = {
        {8, 1}, {8, 2}, {8, 4}, {16, 1}, {16, 2}, {16, 4},
        {32, 1}, {32, 2},
    };

    // Submit the full (setup x shape x policy) grid before collecting.
    SweepExecutor ex(opts.jobs);
    applyBenchOptions(ex, opts);
    struct Cell
    {
        PendingRun conv, dws, slip;
    };
    std::vector<std::vector<Cell>> grid;
    for (const auto &setup : setups) {
        grid.emplace_back();
        for (const auto &[width, warps] : shapes) {
            auto mkCfg = [&](const PolicyConfig &pol) {
                SystemConfig cfg = cfgWithShape(pol, width, warps);
                cfg.wpu.dcache.sizeBytes = setup.size;
                cfg.wpu.dcache.assoc = setup.assoc;
                return cfg;
            };
            const std::string at = std::string(setup.label) + " " +
                                   std::to_string(width) + "x" +
                                   std::to_string(warps);
            grid.back().push_back(Cell{
                    runAllAsync("Conv " + at,
                                mkCfg(PolicyConfig::conv()), opts.scale,
                                opts.benchmarks, ex),
                    runAllAsync("DWS " + at,
                                mkCfg(PolicyConfig::reviveSplit()),
                                opts.scale, opts.benchmarks, ex),
                    runAllAsync("Slip.BB " + at,
                                mkCfg(PolicyConfig::slipBranchBypassCfg()),
                                opts.scale, opts.benchmarks, ex)});
        }
    }

    for (size_t si = 0; si < setups.size(); si++) {
        std::printf("%s\n", setups[si].label);
        TextTable t;
        t.header({"width x warps", "Conv", "DWS", "Slip.BB"});
        double base = 0;
        for (size_t pi = 0; pi < shapes.size(); pi++) {
            const auto &[width, warps] = shapes[pi];
            Cell &cell = grid[si][pi];
            const double c = hmeanCycles(cell.conv.get());
            if (base == 0)
                base = c;
            t.row({std::to_string(width) + "x" + std::to_string(warps),
                   fmt(base / c), fmt(base / hmeanCycles(cell.dws.get())),
                   fmt(base / hmeanCycles(cell.slip.get()))});
        }
        t.print();
        std::printf("\n");
    }
    maybeWriteJson(ex, opts);
    return benchExitCode(ex);
}
