/**
 * @file
 * Simulator throughput benchmark: wall-clock speed of the simulator
 * itself (simulated cycles per second and scalar instructions per
 * second), per kernel under the three policies whose hot paths differ
 * most (Conv: no subdivision, DWS.ReviveSplit: the headline scheme,
 * Slip: warp slipping). This measures the *simulator*, not the
 * simulated system — use it to judge hot-path changes (event queue,
 * ready lists, arenas), not architecture claims.
 *
 * Each cell runs once untimed to warm caches and the allocator, then
 * once timed. Results are printed as a table; `--json FILE` also
 * writes machine-readable records for CI archival.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hh"
#include "kernels/kernel.hh"
#include "sim/json_writer.hh"

namespace dws {
namespace {

struct Cell
{
    std::string policy;
    std::string kernel;
    std::uint64_t cycles = 0;
    std::uint64_t instrs = 0;
    double wallMs = 0;

    double cyclesPerSec() const { return double(cycles) / (wallMs / 1e3); }
    double instrsPerSec() const { return double(instrs) / (wallMs / 1e3); }
};

/** Run one kernel under one policy: one warm-up, one timed rep. */
Cell
timeCell(const std::string &policy, const PolicyConfig &pol,
         const std::string &kernel, KernelScale scale)
{
    // Runs on the calling thread (no executor), so an injected fault or
    // other structured abort exits the process directly with its
    // distinct code (sim/abort.hh exitCodeFor).
    const SystemConfig cfg = withBenchFault(
            withBenchTrace(SystemConfig::table3(pol), policy, kernel),
            policy, kernel);
    runKernel(kernel, cfg, scale); // warm-up
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult r = runKernel(kernel, cfg, scale);
    const auto t1 = std::chrono::steady_clock::now();
    Cell c;
    c.policy = policy;
    c.kernel = kernel;
    c.cycles = r.stats.cycles;
    c.instrs = r.stats.totalScalarInstrs();
    c.wallMs = std::chrono::duration<double, std::milli>(t1 - t0).count();
    return c;
}

void
writeJson(const std::string &path, const std::vector<Cell> &cells)
{
    std::ofstream f(path, std::ios::trunc);
    if (!f.is_open())
        fatal("cannot open %s for writing", path.c_str());
    JsonWriter w(f);
    w.beginArray();
    for (const Cell &c : cells) {
        w.beginObject();
        w.field("policy", c.policy);
        w.field("kernel", c.kernel);
        w.field("sim_cycles", c.cycles);
        w.field("scalar_instrs", c.instrs);
        w.field("wall_ms", c.wallMs);
        w.field("sim_cycles_per_s", c.cyclesPerSec());
        w.field("scalar_instrs_per_s", c.instrsPerSec());
        w.endObject();
    }
    w.endArray();
    f << '\n';
    std::printf("wrote %zu records to %s\n", cells.size(), path.c_str());
}

} // namespace
} // namespace dws

int
main(int argc, char **argv)
{
    using namespace dws;
    const BenchOptions opts = parseBenchArgs(argc, argv);
    setQuiet(true);

    banner("Simulator throughput (wall-clock speed of the simulator)",
           "n/a -- engineering benchmark, not a paper figure");

    const std::vector<std::pair<std::string, PolicyConfig>> policies = {
        {"Conv", PolicyConfig::conv()},
        {"DWS.ReviveSplit", PolicyConfig::reviveSplit()},
        {"Slip", PolicyConfig::adaptiveSlip()},
    };
    const std::vector<std::string> &kernels =
            opts.benchmarks.empty() ? kernelNames() : opts.benchmarks;

    std::printf("%-16s %-8s %12s %10s %14s %16s\n", "policy", "kernel",
                "sim_cycles", "wall_ms", "sim_cycles/s",
                "scalar_instrs/s");
    std::vector<Cell> cells;
    double totalMs = 0;
    std::uint64_t totalCycles = 0, totalInstrs = 0;
    for (const auto &[label, pol] : policies) {
        for (const auto &kernel : kernels) {
            cells.push_back(timeCell(label, pol, kernel, opts.scale));
            const Cell &c = cells.back();
            totalMs += c.wallMs;
            totalCycles += c.cycles;
            totalInstrs += c.instrs;
            std::printf("%-16s %-8s %12llu %10.2f %14.3e %16.3e\n",
                        c.policy.c_str(), c.kernel.c_str(),
                        (unsigned long long)c.cycles, c.wallMs,
                        c.cyclesPerSec(), c.instrsPerSec());
        }
    }
    std::printf("\nTOTAL wall=%.1fms sim_cycles/s=%.4e "
                "scalar_instrs/s=%.4e\n",
                totalMs, double(totalCycles) / (totalMs / 1e3),
                double(totalInstrs) / (totalMs / 1e3));

    if (!opts.jsonPath.empty())
        writeJson(opts.jsonPath, cells);
    return 0;
}
