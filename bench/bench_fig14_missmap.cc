/**
 * @file
 * Figure 14 reproduction: spatial distribution of memory divergence
 * among SIMD threads. For each benchmark, prints the per-thread L1
 * D-cache miss counts of WPU 0 as a warps x lanes grid, normalized to
 * the maximum (0..9 scale; the paper renders this as a heat map).
 * The pattern varies across benchmarks, demonstrating why statically
 * pinning threads or lanes for subdivision would not work.
 */

#include "bench_util.hh"

using namespace dws;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts =
            parseBenchArgs(argc, argv, KernelScale::Tiny);

    banner("Figure 14: per-thread miss map (WPU 0, warps x lanes)",
           "miss patterns vary across benchmarks and are not statically "
           "predictable");

    const SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    const std::vector<std::string> &names =
            opts.benchmarks.empty() ? kernelNames() : opts.benchmarks;

    SweepExecutor ex(opts.jobs);
    applyBenchOptions(ex, opts);
    const std::vector<JobResult> results =
            runBenchmarks(ex, "Conv", cfg, opts);

    for (size_t bi = 0; bi < names.size(); bi++) {
        const std::string &name = names[bi];
        const RunResult &r = results[bi].run;
        const auto &misses = r.stats.wpus[0].threadMisses;
        std::uint64_t maxMiss = 1;
        for (auto m : misses)
            maxMiss = std::max(maxMiss, m);
        std::printf("%s (max %llu misses/thread):\n", name.c_str(),
                    (unsigned long long)maxMiss);
        for (int w = 0; w < cfg.wpu.numWarps; w++) {
            std::printf("  warp %d  ", w);
            for (int lane = 0; lane < cfg.wpu.simdWidth; lane++) {
                const std::uint64_t m = misses[static_cast<size_t>(
                        w * cfg.wpu.simdWidth + lane)];
                std::printf("%llu",
                            (unsigned long long)(m * 9 / maxMiss));
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    maybeWriteJson(ex, opts);
    return benchExitCode(ex);
}
