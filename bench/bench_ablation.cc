/**
 * @file
 * Ablation study of the design choices DESIGN.md calls out (not a
 * paper figure):
 *
 *  1. the Section 4.3 branch-subdivision heuristic: 50-instruction
 *     post-dominator-block bound vs subdividing every divergent branch
 *     vs a tight bound;
 *  2. PC-based re-convergence on/off inside the full DWS.ReviveSplit;
 *  3. the over-subdivision guard (minimum split width).
 */

#include "bench_util.hh"

using namespace dws;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts =
            parseBenchArgs(argc, argv, KernelScale::Tiny);

    banner("Ablations: subdivision heuristic / PC re-convergence / "
           "min split width",
           "design-choice sensitivity (not a paper figure)");

    SweepExecutor ex(opts.jobs);
    applyBenchOptions(ex, opts);
    PendingRun convP = runAllAsync(
            "Conv", SystemConfig::table3(PolicyConfig::conv()),
            opts.scale, opts.benchmarks, ex);

    // Submit every variant before collecting.
    std::vector<std::pair<std::string, PendingRun>> variants;

    // 1. Branch-subdivision heuristic bound.
    for (int bound : {10, 50, 1 << 20}) {
        PolicyConfig pol = PolicyConfig::reviveSplit();
        pol.subdivMaxPostBlock = bound;
        const std::string label =
                bound >= (1 << 20)
                ? "subdiv bound = unlimited (every branch)"
                : "subdiv bound = " + std::to_string(bound);
        variants.emplace_back(
                label, runAllAsync(label, SystemConfig::table3(pol),
                                   opts.scale, opts.benchmarks, ex));
    }

    // 2. PC-based re-convergence off.
    {
        PolicyConfig pol = PolicyConfig::reviveSplit();
        pol.pcReconv = false;
        const std::string label = "PC re-convergence disabled";
        variants.emplace_back(
                label, runAllAsync(label, SystemConfig::table3(pol),
                                   opts.scale, opts.benchmarks, ex));
    }

    // 3. Minimum split width.
    for (int w : {1, 4, 8, 12}) {
        PolicyConfig pol = PolicyConfig::reviveSplit();
        pol.minSplitWidth = w;
        const std::string label =
                "min split width = " + std::to_string(w);
        variants.emplace_back(
                label, runAllAsync(label, SystemConfig::table3(pol),
                                   opts.scale, opts.benchmarks, ex));
    }

    const PolicyRun conv = convP.get();
    TextTable t;
    t.header({"variant", "h-mean speedup"});
    for (auto &[label, pending] : variants)
        t.row({label, fmt(hmeanSpeedup(conv, pending.get()), 3)});
    t.print();
    maybeWriteJson(ex, opts);
    return benchExitCode(ex);
}
