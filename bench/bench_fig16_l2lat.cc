/**
 * @file
 * Figure 16 reproduction: speedup vs L2 lookup latency (10..300
 * cycles). Longer miss latencies need more latency hiding, so DWS's
 * advantage over Conv *increases* with L2 latency (the paper uses this
 * to model systems without an L2, whose L1 misses cost hundreds of
 * cycles).
 */

#include "bench_util.hh"

using namespace dws;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts =
            parseBenchArgs(argc, argv, KernelScale::Tiny);

    banner("Figure 16: speedup vs L2 lookup latency",
           "DWS speedup over Conv increases with longer L2 latency");

    SweepExecutor ex(opts.jobs);
    applyBenchOptions(ex, opts);
    const std::vector<int> lats = {10, 30, 100, 200, 300};
    std::vector<PendingRun> convP, dwsP;
    for (int lat : lats) {
        // The sweep axis lives on the hierarchy spec: take Table 3's
        // fabric, override the first shared level's lookup latency, and
        // install the spec on both configs.
        HierarchySpec spec = HierarchySpec::table3();
        spec.levels[0].cache.hitLatency = lat;
        SystemConfig convCfg = SystemConfig::table3(PolicyConfig::conv());
        convCfg.applyHierarchy(spec);
        SystemConfig dwsCfg =
                SystemConfig::table3(PolicyConfig::reviveSplit());
        dwsCfg.applyHierarchy(spec);
        convP.push_back(runAllAsync("Conv L2 " + std::to_string(lat),
                                    convCfg, opts.scale,
                                    opts.benchmarks, ex));
        dwsP.push_back(runAllAsync("DWS L2 " + std::to_string(lat),
                                   dwsCfg, opts.scale, opts.benchmarks,
                                   ex));
    }

    TextTable t;
    t.header({"L2 latency", "dws speedup over conv"});
    for (size_t i = 0; i < lats.size(); i++) {
        t.row({std::to_string(lats[i]),
               fmt(hmeanSpeedup(convP[i].get(), dwsP[i].get()))});
    }
    t.print();
    maybeWriteJson(ex, opts);
    return benchExitCode(ex);
}
