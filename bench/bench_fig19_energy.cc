/**
 * @file
 * Figure 19 reproduction: energy of Conv, DWS.ReviveSplit and
 * Slip.BranchBypass per benchmark, normalized to Conv. At 65 nm
 * leakage grows linearly with runtime, so energy savings track the
 * speedups; the paper reports DWS saving ~30% and Slip.BB only ~5%.
 */

#include "bench_util.hh"
#include "energy/energy.hh"

using namespace dws;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts =
            parseBenchArgs(argc, argv, KernelScale::Tiny);

    banner("Figure 19: normalized energy (Conv / DWS / Slip.BB)",
           "DWS ~30% energy savings; Slip.BB ~5%");

    SweepExecutor ex(opts.jobs);
    applyBenchOptions(ex, opts);
    PendingRun convP = runAllAsync(
            "Conv", SystemConfig::table3(PolicyConfig::conv()),
            opts.scale, opts.benchmarks, ex);
    PendingRun dwsP = runAllAsync(
            "DWS", SystemConfig::table3(PolicyConfig::reviveSplit()),
            opts.scale, opts.benchmarks, ex);
    PendingRun slipP = runAllAsync(
            "Slip.BB",
            SystemConfig::table3(PolicyConfig::slipBranchBypassCfg()),
            opts.scale, opts.benchmarks, ex);
    const PolicyRun conv = convP.get();
    const PolicyRun dws = dwsP.get();
    const PolicyRun slip = slipP.get();

    TextTable t;
    t.header({"benchmark", "Conv", "DWS", "Slip.BB"});
    double sumC = 0, sumD = 0, sumS = 0;
    for (const auto &[name, cs] : conv.stats) {
        if (!dws.ok(name) || !slip.ok(name)) {
            t.row({name, "1.00", dws.ok(name) ? "-" : "FAIL",
                   slip.ok(name) ? "-" : "FAIL"});
            continue;
        }
        const double d = dws.stats.at(name).energyNj / cs.energyNj;
        const double s = slip.stats.at(name).energyNj / cs.energyNj;
        sumC += 1.0;
        sumD += d;
        sumS += s;
        t.row({name, "1.00", fmt(d), fmt(s)});
    }
    const double n = sumC > 0 ? sumC : 1.0;
    t.row({"mean", "1.00", fmt(sumD / n), fmt(sumS / n)});
    t.print();
    maybeWriteJson(ex, opts);
    return benchExitCode(ex);
}
