/**
 * @file
 * Figure 13 reproduction: the full scheme comparison, per benchmark.
 *
 * Schemes: DWS.BranchOnly, DWS.ReviveSplit.MemOnly, DWS.AggressSplit,
 * DWS.LazySplit, DWS.ReviveSplit, Slip, Slip.BranchBypass; speedups
 * normalized to Conv. The paper reports: BranchOnly 1.13X,
 * ReviveSplit.MemOnly 1.20X, ReviveSplit 1.71X (never harmful),
 * Aggress/Lazy can degrade, Slip only helps Filter and often degrades.
 */

#include "bench_util.hh"

using namespace dws;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts =
            parseBenchArgs(argc, argv, KernelScale::Tiny);

    banner("Figure 13: DWS scheme comparison (speedup vs Conv)",
           "BranchOnly 1.13X; MemOnly 1.20X; ReviveSplit 1.71X; "
           "Slip helps only Filter");

    const std::vector<std::pair<std::string, PolicyConfig>> schemes = {
        {"BranchOnly", PolicyConfig::branchOnly()},
        {"MemOnly", PolicyConfig::reviveMemOnly()},
        {"Aggress", PolicyConfig::dws(SplitScheme::Aggressive)},
        {"Lazy", PolicyConfig::dws(SplitScheme::Lazy)},
        {"Revive", PolicyConfig::reviveSplit()},
        {"Slip", PolicyConfig::adaptiveSlip()},
        {"Slip.BB", PolicyConfig::slipBranchBypassCfg()},
    };

    // Submit every (scheme x benchmark) job before collecting any, so
    // the worker pool sees the whole figure at once.
    SweepExecutor ex(opts.jobs);
    applyBenchOptions(ex, opts);
    PendingRun convPending = runAllAsync(
            "Conv", SystemConfig::table3(PolicyConfig::conv()),
            opts.scale, opts.benchmarks, ex);
    std::vector<PendingRun> pending;
    for (const auto &[label, pol] : schemes)
        pending.push_back(runAllAsync(label, SystemConfig::table3(pol),
                                      opts.scale, opts.benchmarks, ex));

    const PolicyRun conv = convPending.get();
    std::vector<PolicyRun> runs;
    for (auto &p : pending)
        runs.push_back(p.get());

    TextTable t;
    std::vector<std::string> head = {"benchmark"};
    for (const auto &[label, pol] : schemes)
        head.push_back(label);
    t.header(head);

    for (const auto &[name, cs] : conv.stats) {
        std::vector<std::string> row = {name};
        for (const auto &run : runs)
            row.push_back(speedupCell(run, name, cs));
        t.row(row);
    }
    std::vector<std::string> hrow = {"h-mean"};
    for (const auto &run : runs)
        hrow.push_back(fmt(hmeanSpeedup(conv, run)));
    t.row(hrow);
    t.print();
    maybeWriteJson(ex, opts);
    return benchExitCode(ex);
}
