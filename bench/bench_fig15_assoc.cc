/**
 * @file
 * Figure 15 reproduction: speedup vs D-cache associativity (4, 8, 16,
 * fully associative). DWS's benefit shrinks with higher associativity
 * (fewer misses to hide), and at very low associativity simultaneous
 * misses reduce divergence, so the gain is not monotonic.
 */

#include "bench_util.hh"

using namespace dws;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts =
            parseBenchArgs(argc, argv, KernelScale::Tiny);

    banner("Figure 15: speedup vs D-cache associativity (norm. to Conv "
           "at each assoc)",
           "DWS benefit decreases with larger associativity");

    SweepExecutor ex(opts.jobs);
    applyBenchOptions(ex, opts);
    const std::vector<int> assocs = {4, 8, 16, 0};
    std::vector<PendingRun> convP, dwsP;
    for (int assoc : assocs) {
        const std::string suffix =
                assoc == 0 ? "full" : std::to_string(assoc);
        convP.push_back(runAllAsync(
                "Conv assoc " + suffix,
                cfgWithDcache(PolicyConfig::conv(), 32 * 1024, assoc),
                opts.scale, opts.benchmarks, ex));
        dwsP.push_back(runAllAsync(
                "DWS assoc " + suffix,
                cfgWithDcache(PolicyConfig::reviveSplit(), 32 * 1024,
                              assoc),
                opts.scale, opts.benchmarks, ex));
    }

    TextTable t;
    t.header({"assoc", "conv time (norm)", "dws time (norm)",
              "dws speedup"});
    double baseConv = 0;
    for (size_t i = 0; i < assocs.size(); i++) {
        const int assoc = assocs[i];
        const PolicyRun conv = convP[i].get();
        const PolicyRun dws = dwsP[i].get();
        std::vector<double> convCycles, dwsCycles;
        for (const auto &[name, cs] : conv.stats) {
            if (!dws.ok(name))
                continue;
            convCycles.push_back(double(cs.cycles));
            dwsCycles.push_back(double(dws.stats.at(name).cycles));
        }
        const double hc = harmonicMean(convCycles);
        const double hd = harmonicMean(dwsCycles);
        if (baseConv == 0)
            baseConv = hc;
        t.row({assoc == 0 ? "full" : std::to_string(assoc),
               fmt(hc / baseConv), fmt(hd / baseConv),
               fmt(hmeanSpeedup(conv, dws))});
    }
    t.print();
    maybeWriteJson(ex, opts);
    return benchExitCode(ex);
}
