/**
 * @file
 * Figure 20 reproduction: DWS sensitivity to scheduler slot count.
 * The paper finds a moderate slot count best: too few limits the
 * multithreading of warp-splits, too many increases cache contention.
 */

#include "bench_util.hh"

using namespace dws;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts =
            parseBenchArgs(argc, argv, KernelScale::Tiny);

    banner("Figure 20: DWS speedup vs scheduler slots (4 warps x "
           "16-wide)",
           "a moderate slot count (2x warps) performs best");

    const PolicyRun conv = runAll(
            "Conv", SystemConfig::table3(PolicyConfig::conv()),
            opts.scale, opts.benchmarks);

    TextTable t;
    t.header({"sched slots", "dws speedup over conv"});
    for (int slots : {4, 6, 8, 12, 16}) {
        SystemConfig cfg = SystemConfig::table3(PolicyConfig::reviveSplit());
        cfg.wpu.schedSlots = slots;
        const PolicyRun dws =
                runAll("DWS", cfg, opts.scale, opts.benchmarks);
        t.row({std::to_string(slots), fmt(hmeanSpeedup(conv, dws), 3)});
    }
    t.print();
    return 0;
}
