/**
 * @file
 * Figure 20 reproduction: DWS sensitivity to scheduler slot count.
 * The paper finds a moderate slot count best: too few limits the
 * multithreading of warp-splits, too many increases cache contention.
 */

#include "bench_util.hh"

using namespace dws;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts =
            parseBenchArgs(argc, argv, KernelScale::Tiny);

    banner("Figure 20: DWS speedup vs scheduler slots (4 warps x "
           "16-wide)",
           "a moderate slot count (2x warps) performs best");

    SweepExecutor ex(opts.jobs);
    applyBenchOptions(ex, opts);
    PendingRun convP = runAllAsync(
            "Conv", SystemConfig::table3(PolicyConfig::conv()),
            opts.scale, opts.benchmarks, ex);
    const std::vector<int> slotCounts = {4, 6, 8, 12, 16};
    std::vector<PendingRun> dwsP;
    for (int slots : slotCounts) {
        SystemConfig cfg = SystemConfig::table3(PolicyConfig::reviveSplit());
        cfg.wpu.schedSlots = slots;
        dwsP.push_back(runAllAsync("DWS slots " + std::to_string(slots),
                                   cfg, opts.scale, opts.benchmarks,
                                   ex));
    }

    const PolicyRun conv = convP.get();
    TextTable t;
    t.header({"sched slots", "dws speedup over conv"});
    for (size_t i = 0; i < slotCounts.size(); i++)
        t.row({std::to_string(slotCounts[i]),
               fmt(hmeanSpeedup(conv, dwsP[i].get()), 3)});
    t.print();
    maybeWriteJson(ex, opts);
    return benchExitCode(ex);
}
