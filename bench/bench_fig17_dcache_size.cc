/**
 * @file
 * Figure 17 reproduction: speedup vs D-cache size (8 KB .. 128 KB,
 * 8-way). DWS helps latency hiding, so its benefit shrinks as the
 * D-cache grows and misses disappear; the paper notes DWS at 32 KB is
 * roughly equivalent to doubling the D-cache.
 */

#include "bench_util.hh"

using namespace dws;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts =
            parseBenchArgs(argc, argv, KernelScale::Tiny);

    banner("Figure 17: speedup vs D-cache size (8-way)",
           "DWS benefit decreases with larger D-caches; DWS ~= doubling "
           "the D-cache");

    SweepExecutor ex(opts.jobs);
    applyBenchOptions(ex, opts);
    const std::vector<std::uint64_t> sizesKb = {8, 16, 32, 64, 128};
    std::vector<PendingRun> convP, dwsP;
    for (std::uint64_t kb : sizesKb) {
        const std::string suffix = std::to_string(kb) + "KB";
        // The sweep axis is an L1D override on the hierarchy spec;
        // applyHierarchy writes it through to wpu.dcache.
        HierarchySpec spec;
        spec.l1d = SystemConfig{}.wpu.dcache;
        spec.l1d->sizeBytes = kb * 1024;
        spec.l1d->assoc = 8;
        SystemConfig convCfg = SystemConfig::table3(PolicyConfig::conv());
        convCfg.applyHierarchy(spec);
        SystemConfig dwsCfg =
                SystemConfig::table3(PolicyConfig::reviveSplit());
        dwsCfg.applyHierarchy(spec);
        convP.push_back(runAllAsync("Conv D$ " + suffix, convCfg,
                                    opts.scale, opts.benchmarks, ex));
        dwsP.push_back(runAllAsync("DWS D$ " + suffix, dwsCfg,
                                   opts.scale, opts.benchmarks, ex));
    }

    TextTable t;
    t.header({"D$ size", "conv time (norm)", "dws time (norm)",
              "dws speedup"});
    double base = 0;
    for (size_t i = 0; i < sizesKb.size(); i++) {
        const std::uint64_t kb = sizesKb[i];
        const PolicyRun conv = convP[i].get();
        const PolicyRun dws = dwsP[i].get();
        std::vector<double> convCycles, dwsCycles;
        for (const auto &[name, cs] : conv.stats) {
            if (!dws.ok(name))
                continue;
            convCycles.push_back(double(cs.cycles));
            dwsCycles.push_back(double(dws.stats.at(name).cycles));
        }
        const double hc = harmonicMean(convCycles);
        const double hd = harmonicMean(dwsCycles);
        if (base == 0)
            base = hc;
        t.row({std::to_string(kb) + " KB", fmt(hc / base),
               fmt(hd / base), fmt(hmeanSpeedup(conv, dws))});
    }
    t.print();
    maybeWriteJson(ex, opts);
    return benchExitCode(ex);
}
