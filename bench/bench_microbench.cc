/**
 * @file
 * Simulator micro-benchmarks (google-benchmark): raw simulation speed
 * of the WPU pipeline, the cache hierarchy, and the CFG analysis.
 * These measure the *simulator*, not the simulated system.
 */

#include <benchmark/benchmark.h>

#include "harness/runner.hh"
#include "harness/system.hh"
#include "isa/builder.hh"
#include "isa/cfg.hh"
#include "kernels/kernel.hh"
#include "mem/memsys.hh"
#include "sim/logging.hh"

namespace dws {
namespace {

/** Simulate the Filter kernel end to end; report simulated cycles/s. */
void
BM_SimulateFilter(benchmark::State &state)
{
    setQuiet(true);
    KernelParams kp;
    kp.scale = KernelScale::Tiny;
    auto kernel = makeKernel("Filter", kp);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
        System sys(cfg, *kernel);
        cycles += sys.run().cycles;
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
            double(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateFilter)->Unit(benchmark::kMillisecond);

/** Same under the headline DWS policy (more scheduler entities). */
void
BM_SimulateFilterDws(benchmark::State &state)
{
    setQuiet(true);
    KernelParams kp;
    kp.scale = KernelScale::Tiny;
    auto kernel = makeKernel("Filter", kp);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        SystemConfig cfg =
                SystemConfig::table3(PolicyConfig::reviveSplit());
        System sys(cfg, *kernel);
        cycles += sys.run().cycles;
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
            double(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateFilterDws)->Unit(benchmark::kMillisecond);

/** Cache array lookup/allocation throughput. */
void
BM_CacheAccess(benchmark::State &state)
{
    setQuiet(true);
    SystemConfig cfg = SystemConfig::table3(PolicyConfig::conv());
    EventQueue events;
    MemSystem memsys(cfg, events);
    std::uint64_t accesses = 0;
    Addr addr = 0;
    Cycle now = 0;
    for (auto _ : state) {
        memsys.accessData(0, addr & ~Addr(127), false, 0, now);
        addr += 128;
        if (addr > 512 * 1024)
            addr = 0;
        now += 2;
        events.runUntil(now);
        accesses++;
    }
    state.counters["accesses/s"] = benchmark::Counter(
            double(accesses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CacheAccess);

/** CFG post-dominator analysis on the largest kernel program. */
void
BM_CfgAnalysis(benchmark::State &state)
{
    setQuiet(true);
    KernelParams kp;
    kp.scale = KernelScale::Tiny;
    auto kernel = makeKernel("KMeans", kp);
    for (auto _ : state) {
        Program p = kernel->buildProgram();
        benchmark::DoNotOptimize(p.size());
    }
}
BENCHMARK(BM_CfgAnalysis)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace dws

BENCHMARK_MAIN();
