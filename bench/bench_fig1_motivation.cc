/**
 * @file
 * Figure 1 reproduction: why intra-warp latency tolerance is needed.
 *
 * (a) Execution time (split into SIMD-computation and waiting-for-
 *     memory cycles) vs SIMD width 1..16 at 4 warps: wider SIMD first
 *     helps, then memory waiting dominates.
 * (b) 16-wide WPUs still wait on memory even with fully associative
 *     D-caches (capacity, not conflicts).
 * (c) 8-wide WPUs vs warp count: a few warps hide latency, too many
 *     thrash the D-cache.
 *
 * All numbers are harmonic means across the benchmarks, normalized to
 * the first column, under the conventional policy.
 */

#include "bench_util.hh"

using namespace dws;

namespace {

struct Breakdown
{
    double computeFrac = 0;
    double memFrac = 0;
    double meanCycles = 0;
};

Breakdown
measure(SweepExecutor &ex, const std::string &label,
        const SystemConfig &cfg, const BenchOptions &opts)
{
    const std::vector<JobResult> results =
            runBenchmarks(ex, label, cfg, opts);
    std::vector<double> cycles;
    double cf = 0, mf = 0;
    for (const JobResult &r : results) {
        cycles.push_back(double(r.run.stats.cycles));
        double act = 0, mem = 0, tot = 0;
        for (const auto &w : r.run.stats.wpus) {
            act += double(w.activeCycles);
            mem += double(w.memStallCycles);
            tot += double(w.totalCycles());
        }
        cf += act / tot;
        mf += mem / tot;
    }
    Breakdown b;
    b.meanCycles = harmonicMean(cycles);
    b.computeFrac = cf / double(results.size());
    b.memFrac = mf / double(results.size());
    return b;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts =
            parseBenchArgs(argc, argv, KernelScale::Tiny);
    SweepExecutor ex(opts.jobs);
    applyBenchOptions(ex, opts);

    banner("Figure 1: SIMD width / associativity / warp-count "
           "motivation (Conv)",
           "wider SIMD eventually loses to memory waiting; "
           "associativity does not fix it; too many warps thrash");

    // (a) SIMD width sweep at 4 warps.
    {
        std::printf("(a) width sweep, 4 warps, 32 KB 8-way D-cache\n");
        TextTable t;
        t.header({"width", "norm. time", "compute%", "memwait%"});
        double base = 0;
        for (int width : {1, 2, 4, 8, 16}) {
            SystemConfig cfg =
                    cfgWithShape(PolicyConfig::conv(), width, 4);
            const Breakdown b = measure(
                    ex, "(a) width " + std::to_string(width), cfg,
                    opts);
            if (base == 0)
                base = b.meanCycles;
            t.row({std::to_string(width), fmt(b.meanCycles / base),
                   fmt(100 * b.computeFrac, 1), fmt(100 * b.memFrac, 1)});
        }
        t.print();
    }

    // (b) associativity sweep at 16-wide.
    {
        std::printf("\n(b) 16-wide, 4 warps, 32 KB D-cache "
                    "associativity sweep\n");
        TextTable t;
        t.header({"assoc", "norm. time", "compute%", "memwait%"});
        double base = 0;
        for (int assoc : {4, 8, 16, 0}) {
            SystemConfig cfg = cfgWithDcache(PolicyConfig::conv(),
                                             32 * 1024, assoc);
            const std::string lab =
                    assoc == 0 ? "(b) assoc full"
                               : "(b) assoc " + std::to_string(assoc);
            const Breakdown b = measure(ex, lab, cfg, opts);
            if (base == 0)
                base = b.meanCycles;
            t.row({assoc == 0 ? "full" : std::to_string(assoc),
                   fmt(b.meanCycles / base), fmt(100 * b.computeFrac, 1),
                   fmt(100 * b.memFrac, 1)});
        }
        t.print();
    }

    // (c) warp-count sweep at 8-wide.
    {
        std::printf("\n(c) 8-wide, warp-count sweep\n");
        TextTable t;
        t.header({"warps", "norm. time", "compute%", "memwait%"});
        double base = 0;
        for (int warps : {1, 2, 4, 8, 16}) {
            SystemConfig cfg =
                    cfgWithShape(PolicyConfig::conv(), 8, warps);
            const Breakdown b = measure(
                    ex, "(c) warps " + std::to_string(warps), cfg,
                    opts);
            if (base == 0)
                base = b.meanCycles;
            t.row({std::to_string(warps), fmt(b.meanCycles / base),
                   fmt(100 * b.computeFrac, 1), fmt(100 * b.memFrac, 1)});
        }
        t.print();
    }
    maybeWriteJson(ex, opts);
    return benchExitCode(ex);
}
