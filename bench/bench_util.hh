/**
 * @file
 * Helpers shared by the paper-reproduction bench binaries.
 */

#ifndef DWS_BENCH_BENCH_UTIL_HH
#define DWS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "sim/logging.hh"

namespace dws {

/** @return Table 3 config with the given D-cache size/assoc override. */
inline SystemConfig
cfgWithDcache(const PolicyConfig &pol, std::uint64_t sizeBytes, int assoc)
{
    SystemConfig cfg = SystemConfig::table3(pol);
    cfg.wpu.dcache.sizeBytes = sizeBytes;
    cfg.wpu.dcache.assoc = assoc;
    return cfg;
}

/** @return Table 3 config with the given SIMD width and warp count. */
inline SystemConfig
cfgWithShape(const PolicyConfig &pol, int width, int warps)
{
    SystemConfig cfg = SystemConfig::table3(pol);
    cfg.wpu.simdWidth = width;
    cfg.wpu.numWarps = warps;
    cfg.wpu.schedSlots = 2 * warps;
    cfg.wpu.dcache.banks = width;
    return cfg;
}

/** Print a standard bench banner. */
inline void
banner(const char *what, const char *paper)
{
    std::printf("%s\n", what);
    std::printf("paper reference: %s\n\n", paper);
}

} // namespace dws

#endif // DWS_BENCH_BENCH_UTIL_HH
