/**
 * @file
 * Helpers shared by the paper-reproduction bench binaries.
 */

#ifndef DWS_BENCH_BENCH_UTIL_HH
#define DWS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "harness/executor.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "sim/logging.hh"

namespace dws {

/**
 * Submit one job per benchmark (or per `opts.benchmarks` entry) under
 * `cfg` and wait; results come back in benchmark submission order.
 */
inline std::vector<JobResult>
runBenchmarks(SweepExecutor &ex, const std::string &label,
              const SystemConfig &cfg, const BenchOptions &opts)
{
    const std::vector<std::string> &names =
            opts.benchmarks.empty() ? kernelNames() : opts.benchmarks;
    std::vector<SweepJob> jobs;
    jobs.reserve(names.size());
    for (const auto &name : names)
        jobs.push_back(SweepJob{
                name,
                withBenchFault(withBenchTrace(withBenchHier(cfg), label,
                                              name),
                               label, name),
                opts.scale, label});
    return ex.runBatch(std::move(jobs));
}

/**
 * @return the table cell for `run`'s result on `bench`: the speedup
 *         over `base` when the cell completed, else "FAIL(outcome)" so
 *         a poisoned or crashed cell degrades the table instead of
 *         killing the bench.
 */
inline std::string
speedupCell(const PolicyRun &run, const std::string &bench,
            const RunStats &base)
{
    if (run.ok(bench))
        return fmt(speedup(base, run.stats.at(bench)));
    const auto it = run.failures.find(bench);
    const std::string reason =
            it != run.failures.end()
                    ? it->second.substr(0, it->second.find(':'))
                    : "missing";
    return "FAIL(" + reason + ")";
}

/**
 * @return the bench's process exit code: exitCodeFor() of the most
 *         severe job outcome — 0 only if every cell completed with
 *         valid output (the distinct codes are listed in sim/abort.hh).
 */
inline int
benchExitCode(const SweepExecutor &ex)
{
    return exitCodeFor(ex.worstOutcome());
}

/** Write the machine-readable results file if `--json` was given. */
inline void
maybeWriteJson(const SweepExecutor &ex, const BenchOptions &opts)
{
    if (!opts.jsonPath.empty())
        ex.writeJson(opts.jsonPath);
}

/** @return Table 3 config with the given D-cache size/assoc override. */
inline SystemConfig
cfgWithDcache(const PolicyConfig &pol, std::uint64_t sizeBytes, int assoc)
{
    SystemConfig cfg = SystemConfig::table3(pol);
    cfg.wpu.dcache.sizeBytes = sizeBytes;
    cfg.wpu.dcache.assoc = assoc;
    return cfg;
}

/** @return Table 3 config with the given SIMD width and warp count. */
inline SystemConfig
cfgWithShape(const PolicyConfig &pol, int width, int warps)
{
    SystemConfig cfg = SystemConfig::table3(pol);
    cfg.wpu.simdWidth = width;
    cfg.wpu.numWarps = warps;
    cfg.wpu.schedSlots = 2 * warps;
    cfg.wpu.dcache.banks = width;
    return cfg;
}

/** Print a standard bench banner. */
inline void
banner(const char *what, const char *paper)
{
    std::printf("%s\n", what);
    std::printf("paper reference: %s\n\n", paper);
}

} // namespace dws

#endif // DWS_BENCH_BENCH_UTIL_HH
