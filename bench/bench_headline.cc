/**
 * @file
 * Headline reproduction (paper Abstract / Section 5.5): on the Table 3
 * system, DWS.ReviveSplit vs the conventional baseline across all
 * eight benchmarks. The paper reports a 1.7X harmonic-mean speedup,
 * memory-stall time dropping from 76% to 36%, average issued SIMD
 * width dropping from 14 to 4, and ~30% energy savings.
 *
 * Flags: --fast (tiny inputs), --bench NAME (subset).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace dws;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts = parseBenchArgs(argc, argv);

    const SystemConfig convCfg =
            SystemConfig::table3(PolicyConfig::conv());
    const SystemConfig dwsCfg =
            SystemConfig::table3(PolicyConfig::reviveSplit());

    std::printf("Headline: DWS.ReviveSplit vs Conv "
                "(4 WPUs x 4 warps x 16-wide, Table 3)\n\n");

    SweepExecutor ex(opts.jobs);
    applyBenchOptions(ex, opts);
    PendingRun convP =
            runAllAsync("Conv", convCfg, opts.scale, opts.benchmarks,
                        ex);
    PendingRun dwsP =
            runAllAsync("DWS.ReviveSplit", dwsCfg, opts.scale,
                        opts.benchmarks, ex);
    const PolicyRun conv = convP.get();
    const PolicyRun dws = dwsP.get();

    TextTable t;
    t.header({"benchmark", "conv cycles", "dws cycles", "speedup",
              "stall% conv", "stall% dws", "width conv", "width dws",
              "energy ratio"});
    std::vector<double> sp;
    double stallConv = 0, stallDws = 0, widthConv = 0, widthDws = 0;
    double energyConv = 0, energyDws = 0;
    double n = 0;
    for (const auto &[name, cs] : conv.stats) {
        if (!dws.ok(name)) {
            t.row({name, std::to_string(cs.cycles),
                   "FAIL", "-", "-", "-", "-", "-", "-"});
            continue;
        }
        n += 1.0;
        const RunStats &ds = dws.stats.at(name);
        const double s = speedup(cs, ds);
        sp.push_back(s);
        stallConv += cs.memStallFrac();
        stallDws += ds.memStallFrac();
        widthConv += cs.avgSimdWidth();
        widthDws += ds.avgSimdWidth();
        energyConv += cs.energyNj;
        energyDws += ds.energyNj;
        t.row({name, std::to_string(cs.cycles),
               std::to_string(ds.cycles), fmt(s),
               fmt(100.0 * cs.memStallFrac(), 1),
               fmt(100.0 * ds.memStallFrac(), 1),
               fmt(cs.avgSimdWidth(), 1), fmt(ds.avgSimdWidth(), 1),
               fmt(ds.energyNj / cs.energyNj)});
    }
    if (n == 0)
        n = 1.0;
    t.row({"h-mean/avg", "", "", fmt(harmonicMean(sp)),
           fmt(100.0 * stallConv / n, 1), fmt(100.0 * stallDws / n, 1),
           fmt(widthConv / n, 1), fmt(widthDws / n, 1),
           fmt(energyDws / energyConv)});
    t.print();

    std::printf("\npaper: h-mean speedup 1.71X, stall 76%%->36%%, "
                "width 14->4, energy -30%%\n");
    maybeWriteJson(ex, opts);
    return benchExitCode(ex);
}
