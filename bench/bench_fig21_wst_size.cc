/**
 * @file
 * Figure 21 reproduction: DWS sensitivity to the warp-split table
 * size. The paper finds that twice as many WST entries as scheduler
 * slots suffices; larger tables no longer help. Slip.BranchBypass is
 * shown for comparison (it uses no WST).
 */

#include "bench_util.hh"

using namespace dws;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts =
            parseBenchArgs(argc, argv, KernelScale::Tiny);

    banner("Figure 21: DWS speedup vs WST entries (8 scheduler slots)",
           "2x the scheduler slots is enough; more entries don't help");

    const PolicyRun conv = runAll(
            "Conv", SystemConfig::table3(PolicyConfig::conv()),
            opts.scale, opts.benchmarks);

    TextTable t;
    t.header({"wst entries", "dws speedup over conv"});
    for (int entries : {4, 8, 16, 32, 64}) {
        SystemConfig cfg = SystemConfig::table3(PolicyConfig::reviveSplit());
        cfg.wpu.wstEntries = entries;
        const PolicyRun dws =
                runAll("DWS", cfg, opts.scale, opts.benchmarks);
        t.row({std::to_string(entries),
               fmt(hmeanSpeedup(conv, dws), 3)});
    }
    const PolicyRun slip = runAll(
            "Slip.BB",
            SystemConfig::table3(PolicyConfig::slipBranchBypassCfg()),
            opts.scale, opts.benchmarks);
    t.row({"Slip.BB (no WST)", fmt(hmeanSpeedup(conv, slip), 3)});
    t.print();
    return 0;
}
