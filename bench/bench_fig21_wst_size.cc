/**
 * @file
 * Figure 21 reproduction: DWS sensitivity to the warp-split table
 * size. The paper finds that twice as many WST entries as scheduler
 * slots suffices; larger tables no longer help. Slip.BranchBypass is
 * shown for comparison (it uses no WST).
 */

#include "bench_util.hh"

using namespace dws;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts =
            parseBenchArgs(argc, argv, KernelScale::Tiny);

    banner("Figure 21: DWS speedup vs WST entries (8 scheduler slots)",
           "2x the scheduler slots is enough; more entries don't help");

    SweepExecutor ex(opts.jobs);
    applyBenchOptions(ex, opts);
    PendingRun convP = runAllAsync(
            "Conv", SystemConfig::table3(PolicyConfig::conv()),
            opts.scale, opts.benchmarks, ex);
    const std::vector<int> entryCounts = {4, 8, 16, 32, 64};
    std::vector<PendingRun> dwsP;
    for (int entries : entryCounts) {
        SystemConfig cfg = SystemConfig::table3(PolicyConfig::reviveSplit());
        cfg.wpu.wstEntries = entries;
        dwsP.push_back(runAllAsync("DWS wst " + std::to_string(entries),
                                   cfg, opts.scale, opts.benchmarks,
                                   ex));
    }
    PendingRun slipP = runAllAsync(
            "Slip.BB",
            SystemConfig::table3(PolicyConfig::slipBranchBypassCfg()),
            opts.scale, opts.benchmarks, ex);

    const PolicyRun conv = convP.get();
    TextTable t;
    t.header({"wst entries", "dws speedup over conv"});
    for (size_t i = 0; i < entryCounts.size(); i++)
        t.row({std::to_string(entryCounts[i]),
               fmt(hmeanSpeedup(conv, dwsP[i].get()), 3)});
    t.row({"Slip.BB (no WST)",
           fmt(hmeanSpeedup(conv, slipP.get()), 3)});
    t.print();
    maybeWriteJson(ex, opts);
    return benchExitCode(ex);
}
