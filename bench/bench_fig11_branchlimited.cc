/**
 * @file
 * Figure 11 reproduction: DWS upon memory divergence alone with
 * BranchLimited re-convergence. The paper shows that limiting a
 * warp-split's lifespan to one basic block ("BL") yields little gain
 * for all three subdivision schemes, because basic blocks are only
 * tens of instructions long (Table 1).
 */

#include "bench_util.hh"

using namespace dws;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts =
            parseBenchArgs(argc, argv, KernelScale::Tiny);

    banner("Figure 11: memory-divergence DWS with BranchLimited "
           "re-convergence",
           "AggressSplit.BL / LazySplit.BL / ReviveSplit.BL all show "
           "little speedup (h-mean close to 1.0)");

    SweepExecutor ex(opts.jobs);
    applyBenchOptions(ex, opts);
    PendingRun convP = runAllAsync(
            "Conv", SystemConfig::table3(PolicyConfig::conv()),
            opts.scale, opts.benchmarks, ex);

    const std::vector<std::pair<std::string, SplitScheme>> schemes = {
        {"AggressSplit.BL", SplitScheme::Aggressive},
        {"LazySplit.BL", SplitScheme::Lazy},
        {"ReviveSplit.BL", SplitScheme::Revive},
    };
    std::vector<PendingRun> schemeP;
    for (const auto &[label, scheme] : schemes)
        schemeP.push_back(runAllAsync(
                label,
                SystemConfig::table3(
                        PolicyConfig::memOnlyBranchLimited(scheme)),
                opts.scale, opts.benchmarks, ex));
    // Contrast: ReviveSplit with BranchBypass (memory-only).
    PendingRun bypassP = runAllAsync(
            "ReviveSplit.MemOnly (BranchBypass)",
            SystemConfig::table3(PolicyConfig::reviveMemOnly()),
            opts.scale, opts.benchmarks, ex);

    const PolicyRun conv = convP.get();
    TextTable t;
    t.header({"scheme", "h-mean speedup"});
    for (size_t i = 0; i < schemes.size(); i++)
        t.row({schemes[i].first,
               fmt(hmeanSpeedup(conv, schemeP[i].get()), 3)});
    t.row({"ReviveSplit.MemOnly (BranchBypass)",
           fmt(hmeanSpeedup(conv, bypassP.get()), 3)});
    t.print();
    maybeWriteJson(ex, opts);
    return benchExitCode(ex);
}
