/**
 * @file
 * Figure 7 reproduction: DWS upon branch divergence only, comparing
 * stack-based vs PC-based re-convergence. Speedups are normalized to
 * the conventional WPU. The paper reports PC-based re-convergence
 * reducing unrelenting subdivision (average executed SIMD width 4 -> 9
 * for KMeans on 16-wide WPUs) and a 1.13X average speedup.
 */

#include "bench_util.hh"

using namespace dws;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts =
            parseBenchArgs(argc, argv, KernelScale::Tiny);

    banner("Figure 7: DWS on branch divergence only (stack vs PC "
           "re-convergence)",
           "PC-based re-convergence outperforms stack-based; avg "
           "speedup 1.13X; never worse than Conv");

    SweepExecutor ex(opts.jobs);
    applyBenchOptions(ex, opts);
    PendingRun convP = runAllAsync(
            "Conv", SystemConfig::table3(PolicyConfig::conv()),
            opts.scale, opts.benchmarks, ex);
    PendingRun stackP = runAllAsync(
            "Stack", SystemConfig::table3(PolicyConfig::branchOnlyStack()),
            opts.scale, opts.benchmarks, ex);
    PendingRun pcP = runAllAsync(
            "PC", SystemConfig::table3(PolicyConfig::branchOnly()),
            opts.scale, opts.benchmarks, ex);
    const PolicyRun conv = convP.get();
    const PolicyRun stack = stackP.get();
    const PolicyRun pc = pcP.get();

    TextTable t;
    t.header({"benchmark", "stack-based", "PC-based", "width stack",
              "width PC"});
    std::vector<double> spStack, spPc;
    for (const auto &[name, cs] : conv.stats) {
        if (!stack.ok(name) || !pc.ok(name)) {
            t.row({name, speedupCell(stack, name, cs),
                   speedupCell(pc, name, cs), "-", "-"});
            continue;
        }
        const RunStats &ss = stack.stats.at(name);
        const RunStats &ps = pc.stats.at(name);
        spStack.push_back(speedup(cs, ss));
        spPc.push_back(speedup(cs, ps));
        t.row({name, fmt(spStack.back()), fmt(spPc.back()),
               fmt(ss.avgSimdWidth(), 1), fmt(ps.avgSimdWidth(), 1)});
    }
    t.row({"h-mean", fmt(harmonicMean(spStack)),
           fmt(harmonicMean(spPc)), "", ""});
    t.print();
    maybeWriteJson(ex, opts);
    return benchExitCode(ex);
}
